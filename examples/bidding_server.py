#!/usr/bin/env python3
"""The bidding-server counterexample (paper, Section 1), end to end.

A specification that tolerates one corrupted stored bid, and a
sorted-list implementation that — although correct in the absence of
faults — loses the tolerance: one corrupted list head rejects every
later bid.

Run:  python examples/bidding_server.py
"""

from repro.counterexamples import (
    MAX_INT,
    SortedListBiddingServer,
    SpecBiddingServer,
    best_k,
    demonstrate,
    tolerance_holds,
)


def fault_free_agreement(k: int = 4) -> None:
    """Show the implementation is correct when nothing is corrupted."""
    bids = [17, 3, 99, 54, 23, 88, 6, 42, 71]
    spec = SpecBiddingServer(k)
    impl = SortedListBiddingServer(k)
    for value in bids:
        spec.bid(value)
        impl.bid(value)
    assert spec.winners() == impl.winners() == best_k(bids, k)
    print(f"fault-free: both components declare winners {impl.winners()}")


def the_paper_scenario() -> None:
    """Replay the corruption scenario and print the verdicts."""
    outcome = demonstrate(k=3, pre_fault_bids=(10, 20, 30),
                          post_fault_bids=(40, 50, 60))
    print()
    print("after corrupting one stored bid to MAX_INT mid-auction:")
    print(f"  true best-3 of the legitimate bids : {outcome['true_best_k']}")
    print(f"  spec winners                       : {outcome['spec_winners']}")
    print(f"  implementation winners             : {outcome['impl_winners']}")
    print(f"  spec keeps k-1 of best-k?          : {outcome['spec_tolerant']}")
    print(f"  implementation keeps k-1 of best-k?: {outcome['impl_tolerant']}")
    assert outcome["spec_tolerant"] and not outcome["impl_tolerant"]


def tolerance_sweep() -> None:
    """The failure is systematic, not a lucky stream: sweep many streams."""
    import random

    rng = random.Random(7)
    k = 3
    impl_failures = 0
    spec_failures = 0
    trials = 200
    for _ in range(trials):
        pre = [rng.randrange(1, 1000) for _ in range(k)]
        post = [rng.randrange(1, 1000) for _ in range(5)]
        spec = SpecBiddingServer(k)
        impl = SortedListBiddingServer(k)
        for value in pre:
            spec.bid(value)
            impl.bid(value)
        spec.corrupt(spec.min_index(), MAX_INT)
        impl.corrupt(0, MAX_INT)
        for value in post:
            spec.bid(value)
            impl.bid(value)
        bids = pre + post
        if not tolerance_holds(spec.winners(), bids, k):
            spec_failures += 1
        if not tolerance_holds(impl.winners(), bids, k):
            impl_failures += 1
    print()
    print(f"random sweep over {trials} auctions with one corruption each:")
    print(f"  spec violations           : {spec_failures}")
    print(f"  implementation violations : {impl_failures}")
    assert spec_failures == 0
    assert impl_failures > 0


def main() -> None:
    fault_free_agreement()
    the_paper_scenario()
    tolerance_sweep()
    print()
    print("Refinement preserved correctness but not fault-tolerance --")
    print("the motivation for convergence refinement.")


if __name__ == "__main__":
    main()
