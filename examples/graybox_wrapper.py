#!/usr/bin/env python3
"""Graybox stabilization: wrap an implementation you cannot read.

Scenario (paper, Sections 2.2 and 6): a vendor ships a token-ring
implementation as a black box with one promise — it is a convergence
refinement of the published ``BTR`` specification.  You want it
stabilizing.  The graybox recipe:

1. design wrappers against the *specification* (``W1``/``W2``,
   refined to ``W1''``/``W2'`` in the implementation's state space);
2. bolt them onto the implementation *without reading it*;
3. Theorem 5 guarantees the composite stabilizes.

We play the vendor with the paper's new 3-state system ``C3`` — a
different implementation than the ``C2`` the wrappers were developed
for in Section 5 — and confirm the very same wrappers stabilize it
(the paper's Theorem 13).  Then we switch the vendor to ``C2``, and
to Dijkstra's own system, and the wrappers keep working: that is the
reusability claim of graybox design, executed.

Run:  python examples/graybox_wrapper.py
"""

from repro.checker import check_stabilization
from repro.core.composition import box_many
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c2_program,
    c3_program,
    dijkstra_three_state,
    w1_local_program,
    w2_refined_program,
)

RING_SIZE = 4


def main() -> None:
    n = RING_SIZE
    specification = btr_program(n).compile()
    alpha = btr3_abstraction(n)

    # The wrappers: designed once, against the spec's 3-state mapping.
    w1 = w1_local_program(n).compile()
    w2 = w2_refined_program(n).compile()

    vendors = {
        "C3 (the paper's new 3-state system)": c3_program(n),
        "C2 (the Section 5 refinement)": c2_program(n),
        "Dijkstra's own 3-state system": dijkstra_three_state(n),
    }

    print(f"Graybox wrapping on a ring of {n} processes")
    print(f"specification: {specification.name} "
          f"({specification.schema.size()} abstract states)")
    print()

    for label, vendor_program in vendors.items():
        implementation = vendor_program.compile()
        composite = box_many(
            [implementation, w1, w2],
            name=f"{implementation.name} [] W1'' [] W2'",
        )
        # C3 stutters in illegitimate states, so all vendors are
        # checked stutter-insensitively under strong fairness — the
        # weakest assumptions that cover the whole family.
        verdict = check_stabilization(
            composite,
            specification,
            alpha,
            stutter_insensitive=True,
            fairness="strong",
            compute_steps=False,
        )
        status = "stabilizing" if verdict.holds else "NOT stabilizing"
        print(f"  {label:45s} -> {status}")
        assert verdict.holds, f"graybox wrapping failed for {label}"

    print()
    print("Same wrappers, three different implementations, zero knowledge")
    print("of their internals: graybox stabilization (Theorems 5 and 13).")


if __name__ == "__main__":
    main()
