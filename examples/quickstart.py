#!/usr/bin/env python3
"""Quickstart: specify a system, wrap it, and verify stabilization.

This walks the library's core loop in one page:

1. write a small guarded-command program (a token ring would work;
   here a 3-counter "reset cascade" keeps it tiny),
2. compile it to a finite automaton,
3. discover with the checker that it is *not* self-stabilizing,
4. add a wrapper (the paper's Section 2.2 move) and verify that the
   wrapped system stabilizes — with the worst-case convergence time
   computed exactly.

Run:  python examples/quickstart.py
"""

from repro.checker import check_self_stabilization, check_stabilization
from repro.core.composition import box
from repro.gcl import parse_program

BASE = """
program cascade
var x.0, x.1, x.2 : mod 4

# Each cell copies its left neighbour.  Nothing ever repairs cell 0,
# so a corrupted x.0 spreads instead of healing.
action copy.1 :: x.1 != x.0        --> x.1 := x.0
action copy.2 :: x.2 != x.1        --> x.2 := x.1

init x.0 == 0 && x.1 == 0 && x.2 == 0
"""

WRAPPER = """
program watchdog
var x.0, x.1, x.2 : mod 4

# A dependability wrapper in the sense of the paper: extra transitions
# that only fire outside the legitimate states.
action reset :: x.0 != 0 && x.1 == x.0 && x.2 == x.1 --> x.0 := 0
"""


def main() -> None:
    base_program = parse_program(BASE)
    base = base_program.compile()
    print(f"compiled {base.name}: {base.schema.size()} states, "
          f"{base.transition_count()} transitions")

    verdict = check_self_stabilization(base)
    print()
    print(verdict.format())
    assert not verdict.holds, "the bare cascade should NOT stabilize"

    # The checker's witness explains the failure concretely; the fix is
    # a wrapper, composed with the paper's box operator [].
    wrapper = parse_program(WRAPPER).compile()
    wrapped = box(base, wrapper, name="cascade [] watchdog")

    # "wrapped is stabilizing to base": every computation from every
    # corrupted state acquires a suffix of a legitimate computation.
    verdict = check_stabilization(wrapped, base)
    print()
    print(verdict.format())
    assert verdict.holds, "the wrapped cascade should stabilize"

    print()
    print("The wrapper repaired convergence without touching the base "
          "system -- the shape of every derivation in the paper.")


if __name__ == "__main__":
    main()
