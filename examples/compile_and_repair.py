#!/usr/bin/env python3
"""The paper, end to end: a compiler breaks tolerance, a wrapper repairs it.

The opening example of *Convergence Refinement* shows javac compiling a
trivially tolerant loop into intolerant bytecode.  This script runs the
same phenomenon as a pipeline on Dijkstra's own protocol:

1. verify Dijkstra's 3-state ring stabilizes (unfair daemon);
2. apply a *generic compiler pass* — fetch/execute splitting with a
   program counter and value latches (``repro.transform``) — to one
   action;
3. watch stabilization die: the compiled ring has a divergent cycle no
   fairness assumption removes (the corrupted-pc / stale-latch
   schedules);
4. synthesize a repair wrapper (``repro.synthesis``) and verify the
   repaired composite.

Run:  python examples/compile_and_repair.py
"""

from repro.checker import check_stabilization
from repro.core.abstraction import AbstractionFunction
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state
from repro.synthesis import synthesize_wrapper
from repro.transform import sequentialize_action

RING_SIZE = 3


def main() -> None:
    n = RING_SIZE
    btr = btr_program(n).compile()
    alpha3 = btr3_abstraction(n)

    print("1) the source protocol")
    original = dijkstra_three_state(n).compile()
    verdict = check_stabilization(original, btr, alpha3, fairness="none")
    print(f"   Dijkstra-3 (n={n}): stabilizing={verdict.holds}, "
          f"worst case {verdict.worst_case_steps} steps")
    assert verdict.holds

    print()
    print("2) compile one action (fetch/execute with pc + latch)")
    compiled_program = sequentialize_action(dijkstra_three_state(n), "bottom")
    compiled = compiled_program.compile()
    print(f"   compiled state space: {compiled.schema.size()} states "
          f"(was {original.schema.size()})")

    concrete_schema = compiled.schema

    def drop_registers(state):
        env = concrete_schema.unpack(state)
        return alpha3(tuple(env[f"c.{j}"] for j in range(n)))

    alpha = AbstractionFunction(
        concrete_schema, btr.schema, drop_registers, name="alpha-compiled"
    )

    print()
    print("3) stabilization after compilation")
    for fairness in ("none", "strong"):
        verdict = check_stabilization(
            compiled, btr, alpha, stutter_insensitive=True,
            fairness=fairness, compute_steps=False,
        )
        print(f"   fairness={fairness!r}: stabilizing={verdict.holds}")
        assert not verdict.holds
    print("   -> the compiler pass destroyed stabilization "
          "(divergent cycle via stale latched writes)")

    print()
    print("4) synthesize the repair")
    repair = synthesize_wrapper(compiled, btr, alpha, stutter_insensitive=True)
    print("   " + repair.summary())
    assert repair.holds

    print()
    print("Refinement broke the fault-tolerance; a wrapper restored it --")
    print("the paper's thesis and its remedy, both fully mechanical.")


if __name__ == "__main__":
    main()
