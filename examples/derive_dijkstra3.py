#!/usr/bin/env python3
"""Replay the paper's Section 5 derivation of Dijkstra's 3-state ring.

The derivation, step by step and mechanically checked at each step:

1.  ``BTR``       — the abstract bidirectional token ring (Section 3.1);
2.  ``W1``/``W2`` — abstract wrappers; Theorem 6 (strong fairness);
3.  ``BTR3``      — the 3-state mapping of BTR (Section 5);
4.  ``W1''``/``W2'`` — the refined wrappers (Section 5.1), including
    the paper's observation that ``W1''`` is *not* an everywhere
    refinement of the mapped wrapper;
5.  ``C2``        — the concrete-model refinement of BTR3 (Section 5.2)
    with the model violations of BTR3 shown mechanically;
6.  Dijkstra's 3-state system — stabilizing to BTR under the raw
    unfair daemon, with its exact worst-case convergence time.

Run:  python examples/derive_dijkstra3.py [n_processes]
"""

import sys

from repro.checker import (
    VerificationReport,
    check_convergence_refinement,
    check_stabilization,
)
from repro.core.composition import box_many
from repro.gcl import check_model_compliance, render_actions
from repro.rings import (
    btr3_abstraction,
    btr3_program,
    btr_program,
    c2_program,
    dijkstra_three_state,
    w1_local_program,
    w1_program,
    w2_program,
    w2_refined_program,
)


def main(n: int = 4) -> None:
    report = VerificationReport(f"Section 5 derivation, ring of {n} processes")

    # Step 1+2: the abstract ring and its wrappers.
    btr = btr_program(n).compile()
    wrapped = box_many(
        [btr, w1_program(n).compile(), w2_program(n).compile()],
        name="BTR [] W1 [] W2",
    )
    report.add(
        "Theorem 6 (strong fairness)",
        check_stabilization(wrapped, btr, fairness="strong", compute_steps=False),
        note="cancellation must be scheduled fairly",
    )
    report.add(
        "Theorem 6 under the unfair daemon (expected to FAIL)",
        check_stabilization(wrapped, btr, fairness="none", compute_steps=False),
        note="co-located tokens may cross forever",
    )

    # Step 3: the 3-state encoding and its mapping.
    alpha = btr3_abstraction(n)
    btr3 = btr3_program(n)
    print("BTR3 actions (abstract model -- note the neighbour writes):")
    print(render_actions(btr3))
    print()
    violations = check_model_compliance(c2_program(n).processes, writes_restricted=True)
    print(f"C2 concrete-model violations: {len(violations)} (must be 0)")
    print()

    # Step 4: refined wrappers.
    w1pp = w1_local_program(n).compile()
    w2p = w2_refined_program(n).compile()
    comp_abs = box_many([btr3.compile(), w1pp, w2p], name="BTR3 [] W1'' [] W2'")
    report.add(
        "Lemma 9 (strong fairness)",
        check_stabilization(
            comp_abs, btr, alpha, fairness="strong", compute_steps=False
        ),
    )

    # Step 5: the concrete refinement and its composite.
    c2 = c2_program(n).compile()
    comp_conc = box_many([c2, w1pp, w2p], name="C2 [] W1'' [] W2'")
    report.add(
        "Lemma 10, literal reading (known to FAIL; see EXPERIMENTS.md E09)",
        check_convergence_refinement(comp_conc, comp_abs),
    )
    report.add(
        "C2 [] W1'' [] W2' stabilizing to BTR (strong fairness)",
        check_stabilization(
            comp_conc, btr, alpha, fairness="strong", compute_steps=False
        ),
    )

    # Step 6: the merged/optimized system -- Dijkstra's 3-state ring.
    dijkstra = dijkstra_three_state(n).compile()
    result = check_stabilization(dijkstra, btr, alpha, fairness="none")
    report.add("Dijkstra 3-state stabilizing to BTR (unfair daemon)", result)

    print(report.render())
    print()
    if result.worst_case_steps is not None:
        print(
            f"Exact worst-case convergence of Dijkstra's 3-state ring "
            f"(n={n}): {result.worst_case_steps} steps."
        )
    expected_failures = {
        "Theorem 6 under the unfair daemon (expected to FAIL)",
        "Lemma 10, literal reading (known to FAIL; see EXPERIMENTS.md E09)",
    }
    unexpected = [
        entry.label
        for entry in report.failures()
        if entry.label not in expected_failures
    ]
    assert not unexpected, f"unexpected failures: {unexpected}"


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
