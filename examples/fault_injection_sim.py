#!/usr/bin/env python3
"""Fault-injection simulation of the derived rings at scale.

The model checker verifies stabilization exhaustively up to rings of
seven or so processes; this example pushes the same protocols to a
30-process ring with the simulation substrate:

* inject a burst of transient corruptions into Dijkstra's 3-state
  ring and watch the token population collapse back to one;
* compare mean convergence times of all four derived protocols;
* demonstrate the fairness gap concretely: a greedy token-preserving
  adversary keeps the *abstract* wrapped ring (BTR [] W1 [] W2) at two
  tokens forever, while the random (fair-with-probability-1) scheduler
  converges.

Run:  python examples/fault_injection_sim.py
"""

import random

from repro.analysis import format_table, summarize
from repro.rings import btr_program, dijkstra_three_state, w1_program, w2_program
from repro.rings.topology import Ring
from repro.simulation import (
    CorruptVariables,
    FaultSchedule,
    GreedyScheduler,
    PROTOCOLS,
    RandomScheduler,
    btr_tokens,
    convergence_trial,
    simulate,
    three_state_tokens,
)

RING_SIZE = 30


def token_collapse() -> None:
    """One run: corrupt 6 counters at step 40, watch the tokens merge."""
    n = RING_SIZE
    program = dijkstra_three_state(n)
    ring = Ring(n)
    trace = simulate(
        program,
        steps=4000,
        rng=random.Random(11),
        faults=FaultSchedule([40], CorruptVariables(6)),
        stop_when=None,
    )
    print(f"token population after a 6-variable corruption (n={n}):")
    marks = []
    last = None
    for index, env in enumerate(trace.environments()):
        count = len(three_state_tokens(ring, env))
        if count != last:
            marks.append(f"step {index}: {count} token(s)")
            last = count
    print("  " + "; ".join(marks[:12]) + (" ..." if len(marks) > 12 else ""))
    final = len(three_state_tokens(ring, trace.final()))
    assert final == 1, f"expected convergence to one token, got {final}"


def protocol_comparison() -> None:
    """Mean steps to a single token from full random corruption."""
    n = RING_SIZE
    trials = 20
    rows = []
    for name, (builder, kind) in PROTOCOLS.items():
        program = builder(n)
        times = []
        for trial in range(trials):
            rng = random.Random(1000 + trial)
            steps = convergence_trial(program, kind, n, rng, max_steps=400 * n)
            if steps is not None:
                times.append(steps)
        stats = summarize(times)
        rows.append(
            {
                "protocol": name,
                "converged": f"{len(times)}/{trials}",
                "mean": stats["mean"],
                "median": stats["median"],
                "p95": stats["p95"],
            }
        )
    print()
    print(format_table(rows, title=f"convergence from random state, n={n} "
                                   f"(steps under the random daemon)"))


def fairness_gap() -> None:
    """A malicious daemon keeps the abstract wrapped ring at two tokens."""
    n = 8
    program = (
        btr_program(n)
        .merged_with(w1_program(n, strict=True))
        .merged_with(w2_program(n), name="BTR [] W1 [] W2")
    )
    ring = Ring(n)
    # Start with two opposite tokens.
    initial = {v.name: False for v in program.variables}
    initial[Ring.ut(1)] = True
    initial[Ring.dt(n - 2)] = True

    def one_token(env) -> bool:
        return sum(1 for name, value in env.items() if value) == 1

    # The malicious daemon: one-step lookahead, always keeps the move
    # that preserves the most tokens (never schedules a cancellation or
    # a merging bounce).  Exactly the schedule strong fairness outlaws.
    adversary = GreedyScheduler(lambda env: len(btr_tokens(ring, env)))
    budget = 5000
    trace = simulate(program, budget, scheduler=adversary,
                     rng=random.Random(3), initial=initial, stop_when=one_token)
    adversarial_converged = one_token(trace.final())

    trace = simulate(program, budget, scheduler=RandomScheduler(),
                     rng=random.Random(3), initial=initial, stop_when=one_token)
    fair_converged = one_token(trace.final())

    print()
    print(f"abstract BTR [] W1 [] W2 with two opposite tokens (n={n}, "
          f"{budget}-step budget):")
    print(f"  adversarial daemon (greedy)    : "
          f"{'converged' if adversarial_converged else 'still 2 tokens -- divergent'}")
    print(f"  random daemon (fair w.p. 1)    : "
          f"{'converged' if fair_converged else 'did not converge'}")
    assert not adversarial_converged and fair_converged


def main() -> None:
    token_collapse()
    protocol_comparison()
    fairness_gap()
    print()
    print("Exhaustive verification for small rings, simulation for large --")
    print("both substrates agree on who stabilizes and under which daemon.")


if __name__ == "__main__":
    main()
