"""E06 + E07: the 4-state derivation (paper, Section 4).

E06 regenerates Lemma 7 ([C1 <= BTR]) together with the Section 4.2
compression diagram; E07 regenerates Theorem 8 and the wrapper-vacuity
observations, plus Dijkstra's optimized 4-state system.
"""

import pytest

from repro.analysis import format_table
from repro.checker import (
    check_convergence_refinement,
    check_init_refinement,
    check_stabilization,
    compression_transitions,
    expand_to_abstract_path,
)
from repro.rings import (
    btr4_abstraction,
    btr4_program,
    btr_program,
    c1_program,
    dijkstra_four_state,
)
from repro.rings.tokens import count_tokens, state_with_tokens, tokens_in_state


@pytest.mark.parametrize("n", [3, 4, 5])
def test_e06_lemma7(benchmark, n):
    def experiment():
        return check_convergence_refinement(
            c1_program(n).compile(), btr_program(n).compile(), btr4_abstraction(n)
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e06_compression_diagram(benchmark, record_table):
    """Reproduce the Section 4.2 figure: a single C1 transition whose
    abstract witness passes through intermediate BTR states."""

    def experiment():
        n = 4
        alpha = btr4_abstraction(n)
        btr = btr_program(n).compile()
        c1 = c1_program(n).compile()
        schema = btr.schema
        rows = []
        for source, target in compression_transitions(c1, btr, alpha):
            witness = expand_to_abstract_path((source, target), btr, alpha)
            rows.append(
                {
                    "concrete step": " -> ".join(
                        ",".join(tokens_in_state(schema, alpha(s)))
                        for s in (source, target)
                    ),
                    "abstract witness": " -> ".join(
                        ",".join(tokens_in_state(schema, s)) or "(none)"
                        for s in witness
                    ),
                    "omitted states": len(witness) - 2,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert rows and all(row["omitted states"] >= 1 for row in rows)
    # The paper's figure shows a two-up-token state collapsing; confirm
    # a multi-token compression of that shape exists.
    assert any("," in row["concrete step"].split(" -> ")[0] for row in rows)
    record_table(
        "e06_compression_diagram",
        format_table(rows[:12], title="E06 compressions of C1 over BTR (first 12)"),
    )


def test_e07_wrapper_vacuity(benchmark, record_table):
    """W1' and W2' are vacuous in the 4-state encoding: every
    configuration encodes at least one token, and never two at the
    same process."""

    def experiment():
        n = 4
        alpha = btr4_abstraction(n)
        schema = btr_program(n).schema()
        min_tokens = 10**9
        colocated = 0
        for state in alpha.concrete_schema.states():
            tokens = tokens_in_state(schema, alpha(state))
            min_tokens = min(min_tokens, len(tokens))
            positions = [flag.split(".")[1] for flag in tokens]
            if len(set(positions)) < len(positions):
                colocated += 1
        return {"min token count": min_tokens, "co-located encodings": colocated}

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert outcome["min token count"] >= 1
    assert outcome["co-located encodings"] == 0
    rows = [{"quantity": k, "value": v} for k, v in outcome.items()]
    record_table("e07_wrapper_vacuity", format_table(rows, title="E07 wrapper vacuity"))


@pytest.mark.parametrize("system_builder", [c1_program, dijkstra_four_state])
@pytest.mark.parametrize("n", [3, 4])
def test_e07_theorem8(benchmark, system_builder, n):
    def experiment():
        return check_stabilization(
            system_builder(n).compile(),
            btr_program(n).compile(),
            btr4_abstraction(n),
            fairness="none",
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e07_table(benchmark, record_table):
    def experiment():
        rows = []
        for n in (3, 4, 5):
            btr = btr_program(n).compile()
            alpha = btr4_abstraction(n)
            for builder in (c1_program, dijkstra_four_state):
                result = check_stabilization(
                    builder(n).compile(), btr, alpha, fairness="none"
                )
                rows.append(
                    {
                        "system": builder(n).name,
                        "n": n,
                        "stabilizing (unfair)": result.holds,
                        "worst-case steps": result.worst_case_steps,
                        "core size": len(result.core),
                    }
                )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert all(row["stabilizing (unfair)"] for row in rows)
    record_table(
        "e07_theorem8",
        format_table(rows, title="E07 Theorem 8: 4-state systems stabilize to BTR"),
    )
