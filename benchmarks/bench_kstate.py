"""E11: Dijkstra's K-state protocol from the unidirectional ring.

The companion-report derivation, reconstructed: the refinement
relation [K-state <= UTR], the negative result that the boolean UTR
abstraction alone cannot explain convergence (it is not
self-stabilizing), and the threshold sweep rediscovering K >= n - 1.
"""

import pytest

from repro.analysis import format_table
from repro.checker import (
    check_convergence_refinement,
    check_self_stabilization,
    check_stabilization,
)
from repro.rings import kstate_program, utr_program
from repro.rings.mappings import utr_abstraction


def test_e11_utr_not_self_stabilizing(benchmark, record_table):
    def experiment():
        return check_self_stabilization(
            utr_program(4).compile(), compute_steps=False
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    record_table("e11_utr_negative", result.format())


def test_e11_wrapped_utr_fails_even_strongly_fair(benchmark, record_table):
    """The unidirectional contrast to Theorem 6: no wrapper of added
    transitions in token space can stabilize the boolean ring — two
    lockstep tokens satisfy every strong-fairness obligation while
    never merging."""

    def experiment():
        from repro.core.composition import box
        from repro.rings import utr_token_creation_wrapper

        n = 4
        utr = utr_program(n).compile()
        composite = box(utr, utr_token_creation_wrapper(n).compile())
        return check_stabilization(
            composite, utr, fairness="strong", compute_steps=False
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    record_table("e11_wrapped_utr_negative", result.result.format())


@pytest.mark.parametrize("n,k", [(3, 3), (4, 4)])
def test_e11_refinement(benchmark, n, k):
    def experiment():
        return check_convergence_refinement(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


@pytest.mark.parametrize("n,k", [(3, 3), (4, 4), (5, 5), (4, 3)])
def test_e11_stabilization(benchmark, n, k):
    def experiment():
        return check_stabilization(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
            fairness="none",
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e11_threshold_sweep(benchmark, record_table):
    """K >= n - 1 stabilizes; K = n - 2 does not (classical result,
    rediscovered mechanically)."""

    def experiment():
        rows = []
        for n in (3, 4, 5):
            utr = utr_program(n).compile()
            row = {"n": n}
            for k in range(2, n + 2):
                result = check_stabilization(
                    kstate_program(n, k).compile(),
                    utr,
                    utr_abstraction(n, k),
                    compute_steps=False,
                )
                row[f"K={k}"] = result.holds
            rows.append(row)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        n = row["n"]
        for k in range(2, n + 2):
            expected = k >= n - 1
            assert row[f"K={k}"] is expected, (n, k)
    record_table(
        "e11_kstate_threshold",
        format_table(rows, title="E11 K-state stabilization threshold (K >= n-1)"),
    )


def test_e11_convergence_steps_growth(benchmark, record_table):
    def experiment():
        rows = []
        for n in (3, 4, 5):
            result = check_stabilization(
                kstate_program(n, n).compile(),
                utr_program(n).compile(),
                utr_abstraction(n, n),
            )
            rows.append(
                {
                    "n": n,
                    "K": n,
                    "stabilizing": result.holds,
                    "worst-case steps": result.worst_case_steps,
                    "core size": len(result.core),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    steps = [row["worst-case steps"] for row in rows]
    assert steps == sorted(steps)
    record_table(
        "e11_kstate_steps",
        format_table(rows, title="E11 K-state worst-case convergence vs n"),
    )
