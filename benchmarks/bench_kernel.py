"""P02/P05: throughput of the packed and vector engines.

An N-sweep over the K-state ring (K = N, the smallest stabilizing
configuration) times the full stabilization check — K-state refines
the unidirectional token ring — across engines and reports states per
second and peak RSS.  Verdicts are asserted byte-identical at every
size; the speedup on the largest configuration is asserted against
each engine's headline claim: packed ≥ 3x over tuple (P02), vector
≥ 5x over packed (P05, on the ~10⁶-state (7, 7) configuration).  The
small configurations are expected to show the simpler engine ahead:
lowering the program to a kernel (and, for the vector engine,
materializing full-space action tables) has fixed cost that only pays
off once the state space is large enough to amortize it (see
docs/PERFORMANCE.md).

The P09 mega sweep takes the shared engine past the vector ceiling:
``run_mega.py`` streams K-state(7, 7) in a child process under a tiny
16 MiB ``--mem-budget`` and the suite asserts the verdict holds, spill
engaged, and the child's peak RSS stayed within budget plus the
documented baseline allowance.  ``REPRO_MEGA=1`` adds the 16.7M-state
(8, 8) acceptance point.

Artifacts: ``results/p02_kernel_scaling.{txt,json}``,
``results/p05_vector_scaling.{txt,json}``, and
``results/p09_mega_scaling.{txt,json}`` with the sweep tables, and
``results/{p02_kernel,p05_vector}.metrics.json`` with the ``engine.*``
and ``check.*`` counters from instrumented runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import subprocess
import sys
import time

import pytest

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.kernel.vector import numpy_available
from repro.obs import Recorder
from repro.rings import kstate_program, utr_abstraction, utr_program

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the P05 claims are about the vector engine, which needs NumPy",
)

#: (n, k) sweep: 256, 3125, and 46656 concrete states.  The largest is
#: where the >= 3x assertion applies; the CI smoke budget allows it
#: because the packed engine finishes it in about a second.
SWEEP = ((4, 4), (5, 5), (6, 6))

#: Required speedup of packed over tuple on the largest configuration.
REQUIRED_SPEEDUP = 3.0

#: (n, k) sweep for the vector engine: 3125, 46656, and 823543
#: concrete states.  The largest is the ~10⁶-state configuration the
#: ≥ 5x assertion applies to; the packed engine needs tens of seconds
#: there, which is exactly the gap the frontier arrays close.
VECTOR_SWEEP = ((5, 5), (6, 6), (7, 7))

#: Required speedup of vector over packed on the largest configuration.
REQUIRED_VECTOR_SPEEDUP = 5.0

#: P09 mega sweep through the shared engine: (n, k, budget).  The CI
#: smoke point is the previous vector ceiling — 823 543 states — under
#: a deliberately tiny 16 MiB budget, so out-of-core spill genuinely
#: engages.  The 16.7M-state acceptance point (20x that ceiling, ~10
#: minutes) only runs when REPRO_MEGA=1 is exported.
MEGA_SWEEP = [(7, 7, "16M")]
if os.environ.get("REPRO_MEGA") == "1":
    MEGA_SWEEP.append((8, 8, "256M"))

#: The memory budget governs the engine's working set; peak process
#: RSS additionally carries the interpreter + NumPy baseline and
#: allocator transients (see "Memory architecture" in
#: docs/PERFORMANCE.md), so the bounded-RSS assertion allows this much
#: on top of the budget.
MEGA_RSS_ALLOWANCE_KIB = 256 * 1024


def _peak_rss_kib() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed_check(n: int, k: int, engine: str):
    concrete = kstate_program(n, k)
    spec = utr_program(n)
    alpha = utr_abstraction(n, k)
    size = concrete.schema().size()
    start = time.perf_counter()
    result = check_stabilization(
        concrete, spec, alpha, compute_steps=False, engine=engine
    )
    seconds = time.perf_counter() - start
    return seconds, size, result


def _sweep_rows():
    rows = []
    for n, k in SWEEP:
        verdicts = {}
        timings = {}
        size = None
        for engine in ("tuple", "packed"):
            seconds, size, result = _timed_check(n, k, engine)
            verdicts[engine] = result.format()
            timings[engine] = seconds
        assert verdicts["packed"] == verdicts["tuple"], (
            f"verdict diverged at n={n}, k={k}"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": size,
                "tuple_s": round(timings["tuple"], 4),
                "packed_s": round(timings["packed"], 4),
                "tuple_states_per_s": round(size / timings["tuple"]),
                "packed_states_per_s": round(size / timings["packed"]),
                "speedup": round(timings["tuple"] / timings["packed"], 2),
                "peak_rss_kib": _peak_rss_kib(),
            }
        )
    return rows


def _vector_sweep_rows():
    """P05 rows: packed vs vector, states/sec and peak RSS per engine.

    ``ru_maxrss`` is a whole-process high-water mark, so the per-engine
    figures are monotone across the sweep — each reports the highest
    footprint seen up to and including that engine's run.
    """
    rows = []
    for n, k in VECTOR_SWEEP:
        verdicts = {}
        timings = {}
        rss = {}
        size = None
        for engine in ("packed", "vector"):
            seconds, size, result = _timed_check(n, k, engine)
            verdicts[engine] = result.format()
            timings[engine] = seconds
            rss[engine] = _peak_rss_kib()
        assert verdicts["vector"] == verdicts["packed"], (
            f"verdict diverged at n={n}, k={k}"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": size,
                "packed_s": round(timings["packed"], 4),
                "vector_s": round(timings["vector"], 4),
                "packed_states_per_s": round(size / timings["packed"]),
                "vector_states_per_s": round(size / timings["vector"]),
                "speedup": round(timings["packed"] / timings["vector"], 2),
                "packed_peak_rss_kib": rss["packed"],
                "vector_peak_rss_kib": rss["vector"],
            }
        )
    return rows


def test_p02_kernel_scaling(benchmark, record_table):
    rows = benchmark.pedantic(_sweep_rows, rounds=1, iterations=1)
    largest = rows[-1]
    assert largest["speedup"] >= REQUIRED_SPEEDUP, (
        f"packed engine only {largest['speedup']}x over tuple on "
        f"{largest['states']} states; the kernel's headline claim is "
        f">= {REQUIRED_SPEEDUP}x"
    )
    record_table(
        "p02_kernel_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "tuple_s", "packed_s",
                "tuple_states_per_s", "packed_states_per_s",
                "speedup", "peak_rss_kib",
            ],
            title=(
                "P02 packed kernel throughput: K-state(n, k=n) "
                "stabilizing to UTR, tuple vs packed"
            ),
        ),
        rows=rows,
    )


def test_p02_kernel_counters(benchmark, record_metrics):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p02_kernel", n=5, k=5, engine="packed")

    def instrumented():
        return check_stabilization(
            kstate_program(5, 5),
            utr_program(5),
            utr_abstraction(5, 5),
            compute_steps=False,
            engine="packed",
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("engine.packed") == 1
    assert record.counters.get("check.states.enumerated", 0) > 0
    record_metrics("p02_kernel", recorder)


@needs_numpy
def test_p05_vector_scaling(benchmark, record_table):
    rows = benchmark.pedantic(_vector_sweep_rows, rounds=1, iterations=1)
    largest = rows[-1]
    assert largest["speedup"] >= REQUIRED_VECTOR_SPEEDUP, (
        f"vector engine only {largest['speedup']}x over packed on "
        f"{largest['states']} states; the frontier arrays' headline "
        f"claim is >= {REQUIRED_VECTOR_SPEEDUP}x"
    )
    record_table(
        "p05_vector_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "packed_s", "vector_s",
                "packed_states_per_s", "vector_states_per_s",
                "speedup", "packed_peak_rss_kib", "vector_peak_rss_kib",
            ],
            title=(
                "P05 vector engine throughput: K-state(n, k=n) "
                "stabilizing to UTR, packed vs vector"
            ),
        ),
        rows=rows,
    )


def _mega_rows():
    """P09 rows: each configuration runs in a child process so its
    ``ru_maxrss`` measures the shared engine alone — the parent's
    earlier sweeps would otherwise dominate the high-water mark."""
    root = pathlib.Path(__file__).resolve().parent.parent
    runner = root / "benchmarks" / "run_mega.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (str(root / "src"), env.get("PYTHONPATH")) if path
    )
    rows = []
    for n, k, budget in MEGA_SWEEP:
        completed = subprocess.run(
            [sys.executable, str(runner), "--n", str(n), "--k", str(k),
             "--mem-budget", budget],
            capture_output=True, text=True, env=env, timeout=1800,
        )
        assert completed.returncode == 0, (
            f"mega run (n={n}, k={k}) failed:\n{completed.stderr}"
        )
        row = json.loads(completed.stdout)
        rows.append(
            {
                "n": n,
                "k": k,
                "states": row["states"],
                "seconds": row["seconds"],
                "states_per_s": row["states_per_s"],
                "peak_rss_kib": row["peak_rss_kib"],
                "budget_kib": row["budget_bytes"] // 1024,
                "spill_files": row["counters"].get("shm.spill.files", 0),
                "spill_mib": round(
                    row["counters"].get("shm.spill.bytes", 0) / (1 << 20), 1
                ),
                "holds": row["holds"],
                "engine": row["engine"],
            }
        )
    return rows


@needs_numpy
def test_p09_mega_bounded_rss(benchmark, record_table):
    """The shared engine's headline claim: state spaces past the
    vector ceiling complete with RSS bounded by the budget plus the
    documented baseline allowance, spilling the excess to disk."""
    rows = benchmark.pedantic(_mega_rows, rounds=1, iterations=1)
    for row in rows:
        assert row["holds"], f"verdict broke at {row['states']} states"
        assert row["engine"] == "shared", (
            f"expected the shared engine, got {row['engine']}"
        )
        assert row["spill_files"] > 0, (
            "the budget never tripped the spill path — the bounded-RSS "
            "claim was not exercised"
        )
        ceiling = row["budget_kib"] + MEGA_RSS_ALLOWANCE_KIB
        assert row["peak_rss_kib"] <= ceiling, (
            f"peak RSS {row['peak_rss_kib']} KiB exceeds budget "
            f"{row['budget_kib']} KiB + allowance "
            f"{MEGA_RSS_ALLOWANCE_KIB} KiB at {row['states']} states"
        )
    record_table(
        "p09_mega_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "seconds", "states_per_s",
                "peak_rss_kib", "budget_kib", "spill_files", "spill_mib",
            ],
            title=(
                "P09 shared engine at mega scale: K-state(n, k=n) "
                "stabilizing to UTR under a hard memory budget"
            ),
        ),
        rows=rows,
        engine="shared",
    )


@needs_numpy
def test_p05_vector_counters(benchmark, record_metrics, results_dir):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p05_vector", n=6, k=6, engine="vector")

    def instrumented():
        return check_stabilization(
            kstate_program(6, 6),
            utr_program(6),
            utr_abstraction(6, 6),
            compute_steps=False,
            engine="vector",
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("engine.vector") == 1
    assert record.counters.get("check.states.enumerated", 0) > 0
    record_metrics("p05_vector", recorder)
    payload = json.loads(
        (results_dir / "p05_vector.metrics.json").read_text()
    )
    environment = payload["environment"]
    assert environment["engine"] == "vector"
    assert environment["numpy"] is not None
    assert environment["python"]
