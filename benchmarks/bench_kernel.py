"""P02: throughput of the packed kernel engine vs the tuple engine.

An N-sweep over the K-state ring (K = N, the smallest stabilizing
configuration) times the full stabilization check — K-state refines
the unidirectional token ring — on both engines and reports states per
second and peak RSS.  Verdicts are asserted byte-identical at every
size; the speedup on the largest configuration is asserted ≥ 3x,
the headline claim of the packed engine.  The small configuration is
expected to show the tuple engine ahead: lowering the program to a
kernel has fixed cost, and the bitset fixpoints only pay off once the
state space is large enough to amortize it (see docs/PERFORMANCE.md).

Artifacts: ``results/p02_kernel_scaling.{txt,json}`` with the sweep
table and ``results/p02_kernel.metrics.json`` with the ``engine.*``
and ``check.*`` counters from an instrumented packed run.
"""

from __future__ import annotations

import resource
import time

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.obs import Recorder
from repro.rings import kstate_program, utr_abstraction, utr_program

#: (n, k) sweep: 256, 3125, and 46656 concrete states.  The largest is
#: where the >= 3x assertion applies; the CI smoke budget allows it
#: because the packed engine finishes it in about a second.
SWEEP = ((4, 4), (5, 5), (6, 6))

#: Required speedup of packed over tuple on the largest configuration.
REQUIRED_SPEEDUP = 3.0


def _peak_rss_kib() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed_check(n: int, k: int, engine: str):
    concrete = kstate_program(n, k)
    spec = utr_program(n)
    alpha = utr_abstraction(n, k)
    size = concrete.schema().size()
    start = time.perf_counter()
    result = check_stabilization(
        concrete, spec, alpha, compute_steps=False, engine=engine
    )
    seconds = time.perf_counter() - start
    return seconds, size, result


def _sweep_rows():
    rows = []
    for n, k in SWEEP:
        verdicts = {}
        timings = {}
        size = None
        for engine in ("tuple", "packed"):
            seconds, size, result = _timed_check(n, k, engine)
            verdicts[engine] = result.format()
            timings[engine] = seconds
        assert verdicts["packed"] == verdicts["tuple"], (
            f"verdict diverged at n={n}, k={k}"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": size,
                "tuple_s": round(timings["tuple"], 4),
                "packed_s": round(timings["packed"], 4),
                "tuple_states_per_s": round(size / timings["tuple"]),
                "packed_states_per_s": round(size / timings["packed"]),
                "speedup": round(timings["tuple"] / timings["packed"], 2),
                "peak_rss_kib": _peak_rss_kib(),
            }
        )
    return rows


def test_p02_kernel_scaling(benchmark, record_table):
    rows = benchmark.pedantic(_sweep_rows, rounds=1, iterations=1)
    largest = rows[-1]
    assert largest["speedup"] >= REQUIRED_SPEEDUP, (
        f"packed engine only {largest['speedup']}x over tuple on "
        f"{largest['states']} states; the kernel's headline claim is "
        f">= {REQUIRED_SPEEDUP}x"
    )
    record_table(
        "p02_kernel_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "tuple_s", "packed_s",
                "tuple_states_per_s", "packed_states_per_s",
                "speedup", "peak_rss_kib",
            ],
            title=(
                "P02 packed kernel throughput: K-state(n, k=n) "
                "stabilizing to UTR, tuple vs packed"
            ),
        ),
        rows=rows,
    )


def test_p02_kernel_counters(benchmark, record_metrics):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p02_kernel", n=5, k=5, engine="packed")

    def instrumented():
        return check_stabilization(
            kstate_program(5, 5),
            utr_program(5),
            utr_abstraction(5, 5),
            compute_steps=False,
            engine="packed",
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("engine.packed") == 1
    assert record.counters.get("check.states.enumerated", 0) > 0
    record_metrics("p02_kernel", recorder)
