"""P02/P05: throughput of the packed and vector engines.

An N-sweep over the K-state ring (K = N, the smallest stabilizing
configuration) times the full stabilization check — K-state refines
the unidirectional token ring — across engines and reports states per
second and peak RSS.  Verdicts are asserted byte-identical at every
size; the speedup on the largest configuration is asserted against
each engine's headline claim: packed ≥ 3x over tuple (P02), vector
≥ 5x over packed (P05, on the ~10⁶-state (7, 7) configuration).  The
small configurations are expected to show the simpler engine ahead:
lowering the program to a kernel (and, for the vector engine,
materializing full-space action tables) has fixed cost that only pays
off once the state space is large enough to amortize it (see
docs/PERFORMANCE.md).

The P09/P10 mega sweep takes the shared engine past the vector
ceiling: ``run_mega.py`` streams K-state rings in a child process
under an explicit ``--mem-budget`` and the suite asserts the verdict
holds, spill engaged, the adaptive code width narrowed, and the
child's peak RSS stayed within the documented envelope (budget +
interpreter baseline + resident spill pages; see "Memory
architecture" in docs/PERFORMANCE.md).  The default smoke now carries
the 62.7M-state (7, 13) point; ``REPRO_MEGA=1`` adds the 16.7M-state
(8, 8) and the 134M-state (9, 8) acceptance points.  The P10 ablation
test re-runs one configuration with packing, table reuse, and the
mmap visited backing each disabled in turn and asserts the
deterministic per-axis signals: packing halves spill bytes per state,
and table reuse serves re-walked chunks from cache instead of
re-lowering them.

The winning mega row is also mirrored to the repository-level
``BENCH_kernel.json`` trajectory (engine, states, states/sec, peak
RSS, code width), keyed by configuration so re-runs update in place.

Artifacts: ``results/p02_kernel_scaling.{txt,json}``,
``results/p05_vector_scaling.{txt,json}``,
``results/p09_mega_scaling.{txt,json}``, and
``results/p10_mega_ablation.{txt,json}`` with the sweep tables, and
``results/{p02_kernel,p05_vector}.metrics.json`` with the ``engine.*``
and ``check.*`` counters from instrumented runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import subprocess
import sys
import time

import pytest

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.kernel.vector import numpy_available
from repro.obs import Recorder
from repro.rings import kstate_program, utr_abstraction, utr_program

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the P05 claims are about the vector engine, which needs NumPy",
)

#: (n, k) sweep: 256, 3125, and 46656 concrete states.  The largest is
#: where the >= 3x assertion applies; the CI smoke budget allows it
#: because the packed engine finishes it in about a second.
SWEEP = ((4, 4), (5, 5), (6, 6))

#: Required speedup of packed over tuple on the largest configuration.
REQUIRED_SPEEDUP = 3.0

#: (n, k) sweep for the vector engine: 3125, 46656, and 823543
#: concrete states.  The largest is the ~10⁶-state configuration the
#: ≥ 5x assertion applies to; the packed engine needs tens of seconds
#: there, which is exactly the gap the frontier arrays close.
VECTOR_SWEEP = ((5, 5), (6, 6), (7, 7))

#: Required speedup of vector over packed on the largest configuration.
REQUIRED_VECTOR_SPEEDUP = 5.0

#: P09/P10 mega sweep through the shared engine: (n, k, budget).  The
#: first smoke point is the previous vector ceiling — 823 543 states —
#: under a deliberately tiny 16 MiB budget, so out-of-core spill
#: genuinely engages.  The second is the P10 default-smoke headline:
#: 62 748 517 states (7, 13) under 512 MiB, with int32 code packing
#: active.  The REPRO_MEGA=1 acceptance points add 16.7M states (8, 8)
#: and the 1.3x10^8-state (9, 8) configuration.
MEGA_SWEEP = [(7, 7, "16M"), (7, 13, "512M")]
if os.environ.get("REPRO_MEGA") == "1":
    MEGA_SWEEP.append((8, 8, "256M"))
    MEGA_SWEEP.append((9, 8, "1G"))

#: The memory budget governs the engine's working set; peak process
#: RSS additionally carries the interpreter + NumPy baseline and
#: allocator transients (see "Memory architecture" in
#: docs/PERFORMANCE.md), so the bounded-RSS assertion allows this much
#: on top of the budget.
MEGA_RSS_ALLOWANCE_KIB = 256 * 1024

#: Spill buckets are read back through memmaps, whose resident pages
#: the kernel attributes to the process RSS until memory pressure
#: reclaims them.  Spill volume scales with states (measured ~45
#: bytes/state delta-encoded at the smoke points), so the RSS envelope
#: carries a per-state term with headroom on top of the fixed
#: allowance.  See "Memory architecture" in docs/PERFORMANCE.md.
MEGA_RSS_SPILL_RESIDENCY_B = 64

#: The (n, k, budget) configuration for the P10 ablation grid — small
#: enough that four full checks finish in seconds, large enough that
#: spill engages and the worst-case phase re-walks the core region
#: (the recurrence table reuse exists for).
MEGA_ABLATION_POINT = (6, 6, "4M")


def _mega_rss_ceiling_kib(budget_kib: int, states: int) -> int:
    """The documented RSS envelope for one mega configuration."""
    return (
        budget_kib
        + MEGA_RSS_ALLOWANCE_KIB
        + states * MEGA_RSS_SPILL_RESIDENCY_B // 1024
    )


def _peak_rss_kib() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _timed_check(n: int, k: int, engine: str):
    concrete = kstate_program(n, k)
    spec = utr_program(n)
    alpha = utr_abstraction(n, k)
    size = concrete.schema().size()
    start = time.perf_counter()
    result = check_stabilization(
        concrete, spec, alpha, compute_steps=False, engine=engine
    )
    seconds = time.perf_counter() - start
    return seconds, size, result


def _sweep_rows():
    rows = []
    for n, k in SWEEP:
        verdicts = {}
        timings = {}
        size = None
        for engine in ("tuple", "packed"):
            seconds, size, result = _timed_check(n, k, engine)
            verdicts[engine] = result.format()
            timings[engine] = seconds
        assert verdicts["packed"] == verdicts["tuple"], (
            f"verdict diverged at n={n}, k={k}"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": size,
                "tuple_s": round(timings["tuple"], 4),
                "packed_s": round(timings["packed"], 4),
                "tuple_states_per_s": round(size / timings["tuple"]),
                "packed_states_per_s": round(size / timings["packed"]),
                "speedup": round(timings["tuple"] / timings["packed"], 2),
                "peak_rss_kib": _peak_rss_kib(),
            }
        )
    return rows


def _vector_sweep_rows():
    """P05 rows: packed vs vector, states/sec and peak RSS per engine.

    ``ru_maxrss`` is a whole-process high-water mark, so the per-engine
    figures are monotone across the sweep — each reports the highest
    footprint seen up to and including that engine's run.
    """
    rows = []
    for n, k in VECTOR_SWEEP:
        verdicts = {}
        timings = {}
        rss = {}
        size = None
        for engine in ("packed", "vector"):
            seconds, size, result = _timed_check(n, k, engine)
            verdicts[engine] = result.format()
            timings[engine] = seconds
            rss[engine] = _peak_rss_kib()
        assert verdicts["vector"] == verdicts["packed"], (
            f"verdict diverged at n={n}, k={k}"
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": size,
                "packed_s": round(timings["packed"], 4),
                "vector_s": round(timings["vector"], 4),
                "packed_states_per_s": round(size / timings["packed"]),
                "vector_states_per_s": round(size / timings["vector"]),
                "speedup": round(timings["packed"] / timings["vector"], 2),
                "packed_peak_rss_kib": rss["packed"],
                "vector_peak_rss_kib": rss["vector"],
            }
        )
    return rows


def test_p02_kernel_scaling(benchmark, record_table):
    rows = benchmark.pedantic(_sweep_rows, rounds=1, iterations=1)
    largest = rows[-1]
    assert largest["speedup"] >= REQUIRED_SPEEDUP, (
        f"packed engine only {largest['speedup']}x over tuple on "
        f"{largest['states']} states; the kernel's headline claim is "
        f">= {REQUIRED_SPEEDUP}x"
    )
    record_table(
        "p02_kernel_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "tuple_s", "packed_s",
                "tuple_states_per_s", "packed_states_per_s",
                "speedup", "peak_rss_kib",
            ],
            title=(
                "P02 packed kernel throughput: K-state(n, k=n) "
                "stabilizing to UTR, tuple vs packed"
            ),
        ),
        rows=rows,
    )


def test_p02_kernel_counters(benchmark, record_metrics):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p02_kernel", n=5, k=5, engine="packed")

    def instrumented():
        return check_stabilization(
            kstate_program(5, 5),
            utr_program(5),
            utr_abstraction(5, 5),
            compute_steps=False,
            engine="packed",
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("engine.packed") == 1
    assert record.counters.get("check.states.enumerated", 0) > 0
    record_metrics("p02_kernel", recorder)


@needs_numpy
def test_p05_vector_scaling(benchmark, record_table):
    rows = benchmark.pedantic(_vector_sweep_rows, rounds=1, iterations=1)
    largest = rows[-1]
    assert largest["speedup"] >= REQUIRED_VECTOR_SPEEDUP, (
        f"vector engine only {largest['speedup']}x over packed on "
        f"{largest['states']} states; the frontier arrays' headline "
        f"claim is >= {REQUIRED_VECTOR_SPEEDUP}x"
    )
    record_table(
        "p05_vector_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "packed_s", "vector_s",
                "packed_states_per_s", "vector_states_per_s",
                "speedup", "packed_peak_rss_kib", "vector_peak_rss_kib",
            ],
            title=(
                "P05 vector engine throughput: K-state(n, k=n) "
                "stabilizing to UTR, packed vs vector"
            ),
        ),
        rows=rows,
    )


def _run_mega_child(argv, timeout=3600):
    """Run ``run_mega.py`` in a child process and parse its JSON row.

    A child per configuration keeps ``ru_maxrss`` honest: it measures
    the shared engine alone — the parent's earlier sweeps would
    otherwise dominate the high-water mark."""
    root = pathlib.Path(__file__).resolve().parent.parent
    runner = root / "benchmarks" / "run_mega.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (str(root / "src"), env.get("PYTHONPATH")) if path
    )
    completed = subprocess.run(
        [sys.executable, str(runner), *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )
    assert completed.returncode == 0, (
        f"mega run {argv} failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout)


def _mega_rows():
    """P09/P10 rows, one child process per configuration."""
    rows = []
    for n, k, budget in MEGA_SWEEP:
        row = _run_mega_child(
            ["--n", str(n), "--k", str(k), "--mem-budget", budget]
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "states": row["states"],
                "seconds": row["seconds"],
                "states_per_s": row["states_per_s"],
                "peak_rss_kib": row["peak_rss_kib"],
                "budget_kib": row["budget_bytes"] // 1024,
                "code_width": row["code_width"],
                "spill_files": row["counters"].get("shm.spill.files", 0),
                "spill_mib": round(
                    row["counters"].get("shm.spill.bytes", 0) / (1 << 20), 1
                ),
                "holds": row["holds"],
                "engine": row["engine"],
            }
        )
    return rows


def _update_bench_trajectory(rows):
    """Mirror the mega rows into the top-level ``BENCH_kernel.json``.

    The file is the repository's canonical perf trajectory: one row
    per (n, k, budget) configuration with the fields downstream
    tooling tracks across PRs.  Rows are keyed by configuration so a
    re-run updates in place instead of appending duplicates."""
    root = pathlib.Path(__file__).resolve().parent.parent
    path = root / "BENCH_kernel.json"
    payload = {"description": (
        "Canonical shared-engine trajectory: the mega smoke points "
        "from benchmarks/bench_kernel.py (run_mega.py child runs). "
        "Updated in place by test_p09_mega_bounded_rss."
    ), "rows": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("rows"), list):
                payload["rows"] = existing["rows"]
        except (json.JSONDecodeError, OSError):
            pass
    keyed = {
        (row.get("n"), row.get("k"), row.get("budget_kib")): row
        for row in payload["rows"]
    }
    for row in rows:
        keyed[(row["n"], row["k"], row["budget_kib"])] = {
            "n": row["n"],
            "k": row["k"],
            "budget_kib": row["budget_kib"],
            "engine": row["engine"],
            "states": row["states"],
            "states_per_s": row["states_per_s"],
            "peak_rss_kib": row["peak_rss_kib"],
            "code_width": row["code_width"],
        }
    payload["rows"] = sorted(
        keyed.values(), key=lambda row: (row["states"], row["budget_kib"])
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")


@needs_numpy
def test_p09_mega_bounded_rss(benchmark, record_table):
    """The shared engine's headline claim: state spaces past the
    vector ceiling complete with RSS bounded by the budget plus the
    documented baseline allowance, spilling the excess to disk."""
    rows = benchmark.pedantic(_mega_rows, rounds=1, iterations=1)
    for row in rows:
        assert row["holds"], f"verdict broke at {row['states']} states"
        assert row["engine"] == "shared", (
            f"expected the shared engine, got {row['engine']}"
        )
        assert row["spill_files"] > 0, (
            "the budget never tripped the spill path — the bounded-RSS "
            "claim was not exercised"
        )
        # Every sweep configuration fits int32 and exceeds int16: the
        # adaptive width must land on 4 bytes.
        assert row["code_width"] == 4, (
            f"expected int32 packing, got width {row['code_width']} at "
            f"{row['states']} states"
        )
        ceiling = _mega_rss_ceiling_kib(row["budget_kib"], row["states"])
        assert row["peak_rss_kib"] <= ceiling, (
            f"peak RSS {row['peak_rss_kib']} KiB exceeds the documented "
            f"envelope {ceiling} KiB (budget {row['budget_kib']} KiB + "
            f"{MEGA_RSS_ALLOWANCE_KIB} KiB baseline + "
            f"{MEGA_RSS_SPILL_RESIDENCY_B} B/state) at "
            f"{row['states']} states"
        )
    assert max(row["states"] for row in rows) >= 50_000_000, (
        "the default mega smoke must demonstrate >= 5x10^7 states"
    )
    _update_bench_trajectory(rows)
    record_table(
        "p09_mega_scaling",
        format_table(
            rows,
            columns=[
                "n", "k", "states", "seconds", "states_per_s",
                "peak_rss_kib", "budget_kib", "code_width",
                "spill_files", "spill_mib",
            ],
            title=(
                "P09/P10 shared engine at mega scale: K-state(n, k) "
                "stabilizing to UTR under a hard memory budget"
            ),
        ),
        rows=rows,
        engine="shared",
    )


@needs_numpy
def test_p10_mega_ablation(benchmark, record_table):
    """Each P10 axis must carry deterministic, measurable weight:
    packing halves the spilled bytes per state (the narrow dtype is
    exactly half of int64), and table reuse serves re-walked chunks
    from cache instead of re-lowering them.  Wall-clock is recorded
    per row but not asserted — at the smoke points the peel phases are
    sort/IO-bound, so throughput deltas sit inside machine noise while
    the work elimination is exact (see docs/PERFORMANCE.md)."""
    n, k, budget = MEGA_ABLATION_POINT

    def ablation_rows():
        rows = _run_mega_child(
            ["--n", str(n), "--k", str(k), "--mem-budget", budget,
             "--ablate"]
        )
        return {row["mode"]: row for row in rows}

    by_mode = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    assert set(by_mode) == {"full", "no-pack", "no-tables", "no-mmap"}
    for mode, row in by_mode.items():
        assert row["holds"], f"verdict broke in ablation mode {mode}"
        assert row["engine"] == "shared", mode
    full, no_pack = by_mode["full"], by_mode["no-pack"]
    assert full["code_width"] == 4 and no_pack["code_width"] == 8
    assert full["spill_bytes_per_state"] > 0
    assert (
        no_pack["spill_bytes_per_state"]
        >= 1.9 * full["spill_bytes_per_state"]
    ), "int32 packing must (about) halve the spilled bytes per state"
    assert full["relowering_avoided_codes"] > 0, (
        "table reuse served no re-walked chunk from cache"
    )
    assert full["counters"].get("kernel.tables.hits", 0) > 0
    assert by_mode["no-tables"]["relowering_avoided_codes"] == 0
    rows = [
        {
            "mode": mode,
            "states": row["states"],
            "seconds": row["seconds"],
            "states_per_s": row["states_per_s"],
            "code_width": row["code_width"],
            "spill_bytes_per_state": row["spill_bytes_per_state"],
            "relowering_avoided_codes": row["relowering_avoided_codes"],
            "table_hits": row["counters"].get("kernel.tables.hits", 0),
        }
        for mode, row in by_mode.items()
    ]
    record_table(
        "p10_mega_ablation",
        format_table(
            rows,
            columns=[
                "mode", "states", "seconds", "states_per_s", "code_width",
                "spill_bytes_per_state", "relowering_avoided_codes",
                "table_hits",
            ],
            title=(
                f"P10 ablation at K-state({n}, {k}) under {budget}: "
                "packing, table reuse, and mmap visited each toggled off"
            ),
        ),
        rows=rows,
        engine="shared",
    )


@needs_numpy
def test_p05_vector_counters(benchmark, record_metrics, results_dir):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p05_vector", n=6, k=6, engine="vector")

    def instrumented():
        return check_stabilization(
            kstate_program(6, 6),
            utr_program(6),
            utr_abstraction(6, 6),
            compute_steps=False,
            engine="vector",
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("engine.vector") == 1
    assert record.counters.get("check.states.enumerated", 0) > 0
    record_metrics("p05_vector", recorder)
    payload = json.loads(
        (results_dir / "p05_vector.metrics.json").read_text()
    )
    environment = payload["environment"]
    assert environment["engine"] == "vector"
    assert environment["numpy"] is not None
    assert environment["python"]
