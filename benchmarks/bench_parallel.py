"""P01: scaling of the sharded parallel checker and the result cache.

Three artifacts:

* a worker-scaling table — wall time of the stabilization check at
  1/2/4 workers on the largest ring the smoke budget allows, with the
  verdict asserted byte-identical at every width (speedup is reported,
  not asserted: single-core CI runners legitimately show ~1x, and the
  fork/IPC overhead only amortizes once states() enumeration dominates);
* a cache table — cold-miss vs warm-hit wall time for the same
  verification through :class:`repro.parallel.VerificationCache`;
* a metrics JSON with the parallel obs counters (rounds, batches,
  states expanded) from an instrumented sharded run.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.obs import Recorder
from repro.parallel import (
    VerificationCache,
    cache_key,
    parallel_available,
    program_fingerprint,
)
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state

#: Ring size for the scaling sweep: the largest whose sequential check
#: stays inside the CI smoke budget (3^n * 2n transition scans).
SCALE_N = 5

WORKER_WIDTHS = (1, 2, 4)


def _timed_check(n: int, workers: int):
    concrete = dijkstra_three_state(n).compile()
    spec = btr_program(n).compile()
    alpha = btr3_abstraction(n)
    start = time.perf_counter()
    result = check_stabilization(
        concrete, spec, alpha, compute_steps=False, workers=workers
    )
    return time.perf_counter() - start, result


def _scaling_rows(n: int):
    rows = []
    baseline = None
    reference = None
    for workers in WORKER_WIDTHS:
        if workers > 1 and not parallel_available():
            continue
        seconds, result = _timed_check(n, workers)
        rendered = result.format()
        if reference is None:
            baseline, reference = seconds, rendered
        assert rendered == reference, (
            f"verdict changed at {workers} workers"
        )
        rows.append(
            {
                "workers": workers,
                "seconds": round(seconds, 4),
                "speedup": round(baseline / seconds, 2) if seconds else None,
                "holds": result.holds,
            }
        )
    return rows


def test_p01_worker_scaling(benchmark, record_table):
    rows = benchmark.pedantic(
        _scaling_rows, args=(SCALE_N,), rounds=1, iterations=1
    )
    assert all(row["holds"] for row in rows)
    record_table(
        "p01_parallel_scaling",
        format_table(
            rows,
            columns=["workers", "seconds", "speedup", "holds"],
            title=(
                f"P01 sharded checker scaling: Dijkstra3(n={SCALE_N}) "
                "stabilizing to BTR"
            ),
        ),
        rows=rows,
    )


def test_p01_cache_cold_vs_warm(benchmark, record_table, tmp_path):
    cache = VerificationCache(tmp_path / "cache")
    key = cache_key(
        "bench-check",
        [
            program_fingerprint(dijkstra_three_state(4)),
            program_fingerprint(btr_program(4)),
        ],
        {"n": 4, "fairness": "none"},
    )

    def cold_then_warm():
        rows = []
        start = time.perf_counter()
        assert cache.get(key) is None  # cold miss
        _, result = _timed_check(4, 1)
        cache.put(key, {"holds": result.holds, "text": result.format()})
        rows.append(
            {
                "path": "cold (miss + check + store)",
                "seconds": round(time.perf_counter() - start, 4),
            }
        )
        start = time.perf_counter()
        hit = cache.get(key)
        rows.append(
            {"path": "warm (hit)", "seconds": round(time.perf_counter() - start, 4)}
        )
        assert hit is not None and hit["holds"]
        return rows

    rows = benchmark.pedantic(cold_then_warm, rounds=1, iterations=1)
    record_table(
        "p01_cache_cold_warm",
        format_table(
            rows,
            columns=["path", "seconds"],
            title="P01 verification cache: cold miss vs warm hit (n=4)",
        ),
        rows=rows,
    )


@pytest.mark.skipif(not parallel_available(), reason="no fork start method")
def test_p01_sharded_counters(benchmark, record_metrics):
    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="p01_parallel", n=4, workers=2)

    def instrumented():
        return check_stabilization(
            dijkstra_three_state(4).compile(),
            btr_program(4).compile(),
            btr3_abstraction(4),
            compute_steps=False,
            workers=2,
            instrumentation=recorder,
        )

    result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    assert result.holds
    record = recorder.record()
    assert record.counters.get("parallel.workers") == 2
    assert record.counters.get("parallel.batches", 0) > 0
    record_metrics("p01_parallel", recorder)
