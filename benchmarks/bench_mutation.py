"""E19 (extension): mutation adequacy of protocol and checker.

Generate small syntactic mutants of each derived protocol and count
how many the stabilization checker kills.  High kill rates certify two
things at once: the checker discriminates (it is not vacuously
accepting the originals), and the protocols carry almost no slack —
nearly every symbol of Dijkstra's rings is load-bearing.
"""

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_program,
)
from repro.rings.mappings import utr_abstraction
from repro.transform import mutants


def test_e19_mutation_kill_rates(benchmark, record_table):
    def experiment():
        n = 3
        rows = []
        cases = [
            (
                "dijkstra-3state",
                dijkstra_three_state(n),
                btr_program(n).compile(),
                btr3_abstraction(n),
            ),
            (
                "dijkstra-4state",
                dijkstra_four_state(n),
                btr_program(n).compile(),
                btr4_abstraction(n),
            ),
            (
                "k-state (K=3)",
                kstate_program(n, 3),
                utr_program(n).compile(),
                utr_abstraction(n, 3),
            ),
        ]
        for name, program, spec, alpha in cases:
            generated = mutants(program)
            killed = 0
            for mutant in generated:
                result = check_stabilization(
                    mutant.program.compile(),
                    spec,
                    alpha,
                    stutter_insensitive=True,
                    fairness="weak",
                    compute_steps=False,
                )
                if not result.holds:
                    killed += 1
            rows.append(
                {
                    "protocol": name,
                    "mutants": len(generated),
                    "killed": killed,
                    "kill rate": killed / len(generated),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        assert row["kill rate"] >= 0.75, row
    record_table(
        "e19_mutation",
        format_table(
            [
                {**row, "kill rate": f"{row['kill rate']:.0%}"}
                for row in rows
            ],
            title="E19 mutation kill rates (n = 3, weak fairness)",
        ),
    )
