"""E04 + E12: the theory layer on instances.

E04 runs the executable theorem schemas (Theorems 0/1/3/5) on the
4-state derivation instance; E12 reproduces Section 7's separation of
everywhere-eventually refinement from convergence refinement.
"""

from repro.analysis import format_table
from repro.checker import (
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_self_stabilization,
)
from repro.core.theorems import graybox_instance, theorem1_instance
from repro.counterexamples import even_path_concrete, odd_path_abstract
from repro.gcl.program import Program
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c2_program,
    w1_local_program,
    w1_program,
    w2_program,
    w2_refined_program,
)


def test_e04_theorem1_on_the_derivation(benchmark, record_table):
    """E04a: Theorem 1 instantiated with C = C2-composite, A = B = BTR."""

    def experiment():
        n = 3
        from repro.core.composition import box_many

        btr = btr_program(n).compile()
        composite = box_many(
            [
                c2_program(n).compile(),
                w1_local_program(n).compile(),
                w2_refined_program(n).compile(),
            ],
            name="C2[]W1''[]W2'",
        )
        report = theorem1_instance(
            composite, btr, btr, btr3_abstraction(n), fairness="strong"
        )
        return report

    report = benchmark.pedantic(experiment, rounds=3, iterations=1)
    # Theorem 1's premises do not both hold here (the composite is not
    # a convergence refinement of BTR — that is the Lemma 10 finding);
    # the conclusion must hold regardless, which is what we assert.
    assert report.entries[-1].holds, report.render(verbose=True)
    record_table("e04_theorem1", report.render())


def test_e04_graybox_schema(benchmark, record_table):
    """E04b: the cross-state-space Theorem 5 schema on Section 5 parts.

    The wrapper-refinement premise fails (W1'' is not a refinement of
    W1 — the paper says as much) and yet the conclusion holds; the
    schema reports exactly which links of the chain are formal and
    which needed the paper's bespoke argument (Lemma 9)."""

    def experiment():
        n = 3
        return graybox_instance(
            c2_program(n).compile(),
            Program.merged_with(
                w1_local_program(n), w2_refined_program(n)
            ).compile(),
            btr_program(n).compile(),
            Program.merged_with(w1_program(n), w2_program(n)).compile(),
            btr3_abstraction(n),
            fairness="strong",
        )

    report = benchmark.pedantic(experiment, rounds=3, iterations=1)
    assert report.entries[-1].holds, report.render(verbose=True)
    record_table("e04_graybox", report.render())


def test_e12_everywhere_eventually_separation(benchmark, record_table):
    """E12: C-even is an everywhere-eventually refinement of A-odd but
    not a convergence refinement (Section 7's separating example)."""

    def experiment():
        abstract = odd_path_abstract()
        concrete = even_path_concrete()
        return {
            "A self-stabilizing": check_self_stabilization(abstract).holds,
            "C ee-refines A": check_everywhere_eventually_refinement(
                concrete, abstract
            ).holds,
            "C convergence-refines A": check_convergence_refinement(
                concrete, abstract
            ).holds,
        }

    outcome = benchmark(experiment)
    assert outcome["A self-stabilizing"] is True
    assert outcome["C ee-refines A"] is True
    assert outcome["C convergence-refines A"] is False
    rows = [{"claim": key, "result": value} for key, value in outcome.items()]
    record_table(
        "e12_ee_separation",
        format_table(rows, title="E12 everywhere-eventually vs convergence"),
    )
