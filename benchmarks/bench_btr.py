"""E05: Theorem 6 — (BTR [] W1 [] W2) is stabilizing to BTR.

The reproduction's refined statement: the composite stabilizes under
*strong* action fairness and not below it (co-located opposite tokens
can forever cross under an unfair or merely weakly fair daemon).  The
sweep regenerates the verdict per ring size and fairness level.
"""

import pytest

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.core.composition import box_many
from repro.rings import btr_program, w1_program, w2_program


def _theorem6_row(n: int) -> dict:
    btr = btr_program(n).compile()
    composite = box_many(
        [btr, w1_program(n).compile(), w2_program(n).compile()],
        name="BTR[]W1[]W2",
    )
    row = {"n": n, "|Sigma|": btr.schema.size()}
    for fairness in ("none", "weak", "strong"):
        result = check_stabilization(
            composite, btr, fairness=fairness, compute_steps=False
        )
        row[fairness] = result.holds
    return row


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e05_theorem6_per_size(benchmark, n):
    row = benchmark.pedantic(_theorem6_row, args=(n,), rounds=1, iterations=1)
    assert row["strong"] is True
    if n >= 3:  # a 2-ring has no interior, hence no crossing schedules
        assert row["none"] is False
        assert row["weak"] is False


def test_e05_theorem6_table(benchmark, record_table, record_metrics):
    rows = benchmark.pedantic(
        lambda: [_theorem6_row(n) for n in (2, 3, 4, 5)], rounds=1, iterations=1
    )
    record_table(
        "e05_theorem6",
        format_table(
            rows,
            columns=["n", "|Sigma|", "none", "weak", "strong"],
            title="E05 Theorem 6: BTR [] W1 [] W2 stabilizing to BTR, by fairness",
        ),
        rows=rows,
    )
    # Instrumented rerun of the largest strong-fairness cell: the
    # metrics JSON gives the experiment its state-count/phase-timing
    # trajectory alongside the verdict table.
    from repro.obs import Recorder

    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="e05_theorem6", n=5, fairness="strong")
    n = 5
    composite = box_many(
        [
            btr_program(n).compile(),
            w1_program(n).compile(),
            w2_program(n).compile(),
        ],
        name="BTR[]W1[]W2",
    )
    check_stabilization(
        composite,
        btr_program(n).compile(),
        fairness="strong",
        compute_steps=False,
        instrumentation=recorder,
    )
    record_metrics("e05_theorem6", recorder)
