"""E13: convergence time vs ring size for all four derived systems.

The scale experiment the paper's testbed could not run: random-daemon
simulation from uniformly random corrupted states, for rings far
beyond exhaustive-checking size.  The *shape* to reproduce: all four
systems converge; the two Dijkstra systems are the fastest, the
graybox C3 composite pays a constant-factor penalty for its
stuttering repairs, and the K-state ring sits in between.
"""

import math

from repro.analysis import format_table
from repro.simulation import convergence_curve


def test_e13_convergence_curve(benchmark, record_table):
    sizes = (10, 20, 30)

    rows = benchmark.pedantic(
        lambda: convergence_curve(sizes=sizes, trials=15, seed=2002),
        rounds=1,
        iterations=1,
    )
    # every cell converged
    assert all(row["unconverged"] == 0 for row in rows)
    by_protocol = {}
    for row in rows:
        by_protocol.setdefault(row["protocol"], {})[row["n"]] = row["mean"]
    # monotone growth in n for every protocol
    for name, curve in by_protocol.items():
        means = [curve[n] for n in sizes]
        assert means[0] < means[-1], (name, means)
    # the C3 composite is the slowest at the largest size
    largest = {name: curve[sizes[-1]] for name, curve in by_protocol.items()}
    slowest = max(largest, key=largest.get)
    assert "C3" in slowest or "3state" in slowest
    record_table(
        "e13_convergence_curve",
        format_table(
            [
                {
                    "protocol": row["protocol"],
                    "n": row["n"],
                    "mean": row["mean"],
                    "median": row["median"],
                    "p95": row["p95"],
                    "max": row["max"],
                }
                for row in rows
            ],
            title="E13 convergence steps from random corruption "
            "(random daemon, 15 trials/cell)",
        ),
    )


def test_e13_exact_worst_case_vs_simulated_mean(
    benchmark, record_table, record_metrics
):
    """Where both substrates run (n = 5): the simulated mean sits well
    below the checker's exact adversarial worst case."""
    from repro.obs import Recorder

    recorder = Recorder(kind="bench")
    recorder.annotate(experiment="e13_exact_vs_simulated", n=5)

    def experiment():
        from repro.checker import check_stabilization
        from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state
        from repro.simulation import convergence_curve

        n = 5
        exact = check_stabilization(
            dijkstra_three_state(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            instrumentation=recorder,
        ).worst_case_steps
        rows = convergence_curve(
            sizes=(n,),
            trials=30,
            protocols={"dijkstra-3state": (dijkstra_three_state, "three")},
        )
        return exact, rows[0]

    exact, row = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert row["max"] <= exact
    table_rows = [
        {
            "quantity": "exact adversarial worst case",
            "steps": exact,
        },
        {"quantity": "simulated mean (random daemon)", "steps": row["mean"]},
        {"quantity": "simulated max (30 trials)", "steps": row["max"]},
    ]
    record_table(
        "e13_exact_vs_simulated",
        format_table(
            table_rows,
            title="E13 exact worst case vs simulation, Dijkstra-3, n=5",
        ),
        rows=table_rows,
    )
    record_metrics("e13_exact_vs_simulated", recorder)
