"""E18 (extension): availability under sustained fault rates.

The steady-state complement to E13: instead of one corruption and a
recovery clock, faults arrive continuously with a per-step probability
and the metric is the fraction of time the ring holds exactly one
token.  Expected shape: availability 1.0 at rate 0, smooth decay with
the rate, and a steeper decay for the slower-converging protocols.
"""

from repro.analysis import format_table
from repro.simulation import availability_curve


def test_e18_availability_curve(benchmark, record_table):
    rates = (0.0, 0.01, 0.05, 0.1)

    rows = benchmark.pedantic(
        lambda: availability_curve(
            n_processes=10, fault_probabilities=rates, steps=1500, trials=4
        ),
        rounds=1,
        iterations=1,
    )
    by_protocol = {}
    for row in rows:
        by_protocol.setdefault(row["protocol"], {})[row["fault rate"]] = row[
            "availability"
        ]
    for name, curve in by_protocol.items():
        # Perfect service with no faults...
        assert curve[0.0] == 1.0, name
        # ...and monotone-ish decay: the highest rate is clearly worse
        # than fault-free, and no more available than the lowest rate
        # within noise.
        assert curve[0.1] < 1.0, name
        assert curve[0.1] <= curve[0.01] + 0.05, name
    # The slow converger (the C3 composite) pays the most at high rate.
    at_peak = {name: curve[0.1] for name, curve in by_protocol.items()}
    slowest = min(at_peak, key=at_peak.get)
    assert "C3" in slowest or "3state" in slowest
    record_table(
        "e18_availability",
        format_table(
            [
                {
                    "protocol": row["protocol"],
                    "fault rate": f"{row['fault rate']:.2f}",
                    "availability": f"{row['availability']:.3f}",
                }
                for row in rows
            ],
            title="E18 availability vs fault rate (n=10, 1500 steps, 4 trials)",
        ),
    )
