"""E10: the new 3-state system C3 (paper, Section 6).

Regenerates the stuttering figure, the (refuted) literal Lemma 12, the
graybox Theorem 13, and the paper's closing action-level equality of
the aggressive composite with Dijkstra's 3-state system.
"""

import pytest

from repro.analysis import format_table
from repro.checker import check_convergence_refinement, check_stabilization
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c3_aggressive_composed,
    c3_composed,
    c3_program,
    dijkstra_three_state,
)


def test_e10_stuttering_figure(benchmark, record_table):
    """The Section 6 tau-step figure: the exact configuration
    (c.0, c.1, c.2) = (0, 2, 1) where process 1's move is a no-op."""

    def experiment():
        program = c3_program(3)
        schema = program.schema()
        state = schema.pack({"c.0": 0, "c.1": 2, "c.2": 1})
        env = program.env_of(state)
        up1 = {a.name: a for a in program.actions}["up.1"]
        return {"enabled": up1.enabled(env), "post == pre": up1.execute(env) == env}

    outcome = benchmark(experiment)
    assert outcome == {"enabled": True, "post == pre": True}
    rows = [{"property": k, "holds": v} for k, v in outcome.items()]
    record_table(
        "e10_stuttering", format_table(rows, title="E10 C3 tau step (paper figure)")
    )


def test_e10_lemma12_literal_fails(benchmark, record_table):
    """[C3 <= BTR] read literally is refuted: opposite tokens crossing
    in one C3 step are compressions that recur on bouncing cycles."""

    def experiment():
        n = 4
        return check_convergence_refinement(
            c3_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    assert result.witness.kind.value == "compression-on-cycle"
    record_table("e10_lemma12_literal", result.format())


@pytest.mark.parametrize("n", [3, 4])
def test_e10_theorem13(benchmark, n):
    def experiment():
        return check_stabilization(
            c3_composed(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
            fairness="strong",
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_e10_aggressive_composite_equals_dijkstra3(benchmark, n):
    """Section 6's closing claim as exact automaton equality."""

    def experiment():
        return (
            c3_aggressive_composed(n).compile(),
            dijkstra_three_state(n).compile(),
        )

    aggressive, dijkstra = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert aggressive == dijkstra


def test_e10_table(benchmark, record_table):
    def experiment():
        rows = []
        for n in (3, 4):
            btr = btr_program(n).compile()
            alpha = btr3_abstraction(n)
            rows.append(
                {
                    "n": n,
                    "lemma 12 literal": check_convergence_refinement(
                        c3_program(n).compile(), btr, alpha,
                        stutter_insensitive=True,
                    ).holds,
                    "theorem 13 (strong)": check_stabilization(
                        c3_composed(n).compile(), btr, alpha,
                        stutter_insensitive=True, fairness="strong",
                        compute_steps=False,
                    ).holds,
                    "aggressive == Dijkstra3": (
                        c3_aggressive_composed(n).compile()
                        == dijkstra_three_state(n).compile()
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        assert not row["lemma 12 literal"]
        assert row["theorem 13 (strong)"] and row["aggressive == Dijkstra3"]
    record_table(
        "e10_new_three_state",
        format_table(rows, title="E10 the new 3-state system C3"),
    )
