"""E08 + E09: the 3-state derivation (paper, Section 5).

E08 regenerates Lemma 9 (composite of BTR3 with the refined wrappers);
E09 regenerates the Lemma 10 / Theorem 11 cluster, including the
reproduction's finding that the literal Lemma 10 fails while the
optimized (merged) system — Dijkstra's 3-state ring — stabilizes under
the raw unfair daemon.
"""

import pytest

from repro.analysis import format_table
from repro.checker import (
    check_convergence_refinement,
    check_everywhere_refinement,
    check_stabilization,
)
from repro.core.composition import box_many
from repro.rings import (
    btr3_abstraction,
    btr3_program,
    btr_program,
    c2_program,
    dijkstra_three_state,
    w1_global_program,
    w1_local_program,
    w2_refined_program,
)


def _composite(n: int, base_builder):
    return box_many(
        [
            base_builder(n).compile(),
            w1_local_program(n).compile(),
            w2_refined_program(n).compile(),
        ],
        name=f"{base_builder(n).name}[]W1''[]W2'",
    )


@pytest.mark.parametrize("n", [3, 4])
def test_e08_lemma9(benchmark, n):
    def experiment():
        return check_stabilization(
            _composite(n, btr3_program),
            btr_program(n).compile(),
            btr3_abstraction(n),
            fairness="strong",
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e08_w1_local_not_a_refinement(benchmark, record_table):
    """The paper's own caveat, mechanized: W1'' is not an everywhere
    refinement of the mapped global wrapper W1'."""

    def experiment():
        n = 4
        return check_everywhere_refinement(
            w1_local_program(n).compile(),
            w1_global_program(n).compile(),
            open_systems=True,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    record_table("e08_w1pp_not_refinement", result.format())


def test_e09_lemma10_literal_fails(benchmark, record_table):
    """[C2comp <= BTR3comp] read literally over the 3-state space is
    refuted with a concrete witness transition."""

    def experiment():
        n = 4
        return check_convergence_refinement(
            _composite(n, c2_program), _composite(n, btr3_program)
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    record_table("e09_lemma10_literal", result.format())


@pytest.mark.parametrize("n", [3, 4])
def test_e09_theorem11_composite_strong(benchmark, n):
    def experiment():
        return check_stabilization(
            _composite(n, c2_program),
            btr_program(n).compile(),
            btr3_abstraction(n),
            fairness="strong",
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_e09_dijkstra3_unfair(benchmark, n):
    def experiment():
        return check_stabilization(
            dijkstra_three_state(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            fairness="none",
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e09_table(benchmark, record_table):
    def experiment():
        rows = []
        for n in (3, 4, 5):
            btr = btr_program(n).compile()
            alpha = btr3_abstraction(n)
            composite = _composite(n, c2_program)
            dijkstra = dijkstra_three_state(n).compile()
            rows.append(
                {
                    "n": n,
                    "C2 composite (unfair)": check_stabilization(
                        composite, btr, alpha, fairness="none", compute_steps=False
                    ).holds,
                    "C2 composite (strong)": check_stabilization(
                        composite, btr, alpha, fairness="strong", compute_steps=False
                    ).holds,
                    "Dijkstra3 (unfair)": check_stabilization(
                        dijkstra, btr, alpha, fairness="none", compute_steps=False
                    ).holds,
                    "worst-case steps": check_stabilization(
                        dijkstra, btr, alpha, fairness="none"
                    ).worst_case_steps,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        assert row["C2 composite (strong)"] and row["Dijkstra3 (unfair)"]
        if row["n"] >= 4:
            # With at least two interior processes the raw union keeps
            # divergent crossing schedules; a 3-ring has a single
            # interior process and converges even unfairly.
            assert not row["C2 composite (unfair)"]
    record_table(
        "e09_theorem11",
        format_table(
            rows,
            title="E09 Theorem 11: the merge into Dijkstra-3 removes the "
            "fairness requirement",
        ),
    )
