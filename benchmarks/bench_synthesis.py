"""E16 (extension): automatic wrapper synthesis.

Not a paper artifact — the paper's *future work* ("refinement tools"),
implemented and measured: how many repair transitions the synthesizer
needs per system, and under which fairness assumption the synthesized
composite verifies.
"""

from repro.analysis import format_table
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c1_program,
    c2_program,
    c3_program,
)
from repro.synthesis import synthesize_wrapper


def test_e16_synthesis_sweep(benchmark, record_table):
    def experiment():
        n = 4
        btr = btr_program(n).compile()
        cases = [
            ("bare BTR (invent W1/W2)", btr, btr, None, False),
            ("bare C1", c1_program(n).compile(), btr, btr4_abstraction(n), False),
            ("bare C2", c2_program(n).compile(), btr, btr3_abstraction(n), False),
            ("bare C3", c3_program(n).compile(), btr, btr3_abstraction(n), True),
        ]
        rows = []
        for label, system, spec, alpha, stutter in cases:
            result = synthesize_wrapper(
                system, spec, alpha, stutter_insensitive=stutter
            )
            rows.append(
                {
                    "system": label,
                    "repairs": result.wrapper.transition_count(),
                    "fairness needed": result.fairness,
                    "verified": result.holds,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert all(row["verified"] for row in rows)
    # C1 already stabilizes on its own: the wrapper must be empty.
    c1_row = next(row for row in rows if row["system"] == "bare C1")
    assert c1_row["repairs"] == 0
    # C2's synthesized repairs need no fairness, unlike the paper's
    # hand-built composite.
    c2_row = next(row for row in rows if row["system"] == "bare C2")
    assert c2_row["fairness needed"] == "none"
    record_table(
        "e16_synthesis",
        format_table(rows, title="E16 synthesized wrappers (extension), n = 4"),
    )
