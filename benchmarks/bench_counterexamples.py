"""E01-E03: the paper's Section 1 counterexamples and Figure 1.

Each experiment re-establishes the paper's claim mechanically and
benchmarks the full check.
"""

from repro.analysis import format_table
from repro.checker import (
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
)
from repro.counterexamples import (
    abstract_loop_system,
    bytecode_abstraction,
    bytecode_system,
    corruption_states,
    demonstrate,
    figure1_abstract,
    figure1_concrete,
)


def test_e01_compiled_loop(benchmark, record_table):
    """E01: the abstract x:=0 loop is stabilizing; javac's bytecode is not."""

    def experiment():
        abstract = abstract_loop_system()
        concrete = bytecode_system()
        alpha = bytecode_abstraction()
        return {
            "abstract stabilizing": check_self_stabilization(abstract).holds,
            "bytecode refines abstract (init, modulo stutter)":
                check_init_refinement(
                    concrete, abstract, alpha, stutter_insensitive=True
                ).holds,
            "bytecode stabilizing": check_stabilization(
                concrete, abstract, alpha, stutter_insensitive=True
            ).holds,
            "fault states (pc=8, stack != local)": len(corruption_states()),
        }

    outcome = benchmark(experiment)
    assert outcome["abstract stabilizing"] is True
    assert outcome["bytecode refines abstract (init, modulo stutter)"] is True
    assert outcome["bytecode stabilizing"] is False
    assert outcome["fault states (pc=8, stack != local)"] == 2
    rows = [{"claim": key, "result": value} for key, value in outcome.items()]
    record_table("e01_compiled_loop", format_table(rows, title="E01 compiled loop"))


def test_e02_bidding_server(benchmark, record_table):
    """E02: the spec keeps k-1 of best-k under one corruption; the
    sorted-list implementation does not."""

    outcome = benchmark(demonstrate)
    assert outcome["spec_tolerant"] is True
    assert outcome["impl_tolerant"] is False
    rows = [{"quantity": key, "value": str(value)} for key, value in outcome.items()]
    record_table("e02_bidding_server", format_table(rows, title="E02 bidding server"))


def test_e03_figure1(benchmark, record_table):
    """E03: Figure 1 — [C (= A]_init holds, A is self-stabilizing, yet
    C is not stabilizing to A."""

    def experiment():
        abstract = figure1_abstract()
        concrete = figure1_concrete()
        return {
            "[C (= A]_init": check_init_refinement(concrete, abstract).holds,
            "A self-stabilizing": check_self_stabilization(abstract).holds,
            "C stabilizing to A": check_stabilization(concrete, abstract).holds,
        }

    outcome = benchmark(experiment)
    assert outcome["[C (= A]_init"] is True
    assert outcome["A self-stabilizing"] is True
    assert outcome["C stabilizing to A"] is False
    rows = [{"claim": key, "result": value} for key, value in outcome.items()]
    record_table("e03_figure1", format_table(rows, title="E03 Figure 1"))
