"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's artifacts (see
DESIGN.md's experiment index).  Besides pytest-benchmark's timing
table, each experiment writes its reproduced rows to
``benchmarks/results/<experiment>.txt`` so the artifact survives
output capturing and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) a rendered experiment table.

    Usage: ``record_table("e05_theorem6", table_text)``.
    """

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _record
