"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's artifacts (see
DESIGN.md's experiment index).  Besides pytest-benchmark's timing
table, each experiment writes its reproduced rows to
``benchmarks/results/<experiment>.txt`` so the artifact survives
output capturing and can be diffed against EXPERIMENTS.md.  When the
caller also passes the structured rows, they are written as
``results/<experiment>.json`` so downstream tooling does not have to
re-parse the rendered text; instrumented experiments can additionally
persist their observability record as
``results/<experiment>.metrics.json`` via the ``record_metrics``
fixture, which is where the perf trajectory (states explored, phase
timings) accumulates.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Mapping, Optional, Sequence

import pytest

from repro.kernel.vector import numpy_version
from repro.obs import Recorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def environment_stanza(engine: Optional[str] = None) -> Mapping[str, object]:
    """The provenance block every results row carries.

    Perf rows are only comparable across machines when the payload says
    which engine ran and on which interpreter/NumPy; ``numpy`` is null
    on a pure-Python install, where "vector" falls back.
    """
    return {
        "engine": engine,
        "numpy": numpy_version(),
        "python": platform.python_version(),
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) a rendered experiment table.

    Usage: ``record_table("e05_theorem6", table_text)``; pass the
    structured rows too — ``record_table(name, text, rows=rows)`` — to
    also emit ``results/<name>.json``.
    """

    def _record(
        name: str,
        text: str,
        rows: Optional[Sequence[Mapping[str, object]]] = None,
        engine: Optional[str] = None,
    ) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        if rows is not None:
            json_path = results_dir / f"{name}.json"
            json_path.write_text(
                json.dumps(
                    {
                        "environment": dict(environment_stanza(engine)),
                        "rows": [dict(row) for row in rows],
                    },
                    indent=2,
                    default=str,
                )
                + "\n"
            )
        print(f"\n[{name}]\n{text}")

    return _record


@pytest.fixture
def record_metrics(results_dir):
    """Persist an experiment's observability record as metrics JSON.

    Usage: build a :class:`repro.obs.Recorder`, pass it as
    ``instrumentation=`` to the checker/simulator calls under
    measurement, then ``record_metrics("e05_theorem6", recorder)``.
    Writes ``results/<name>.metrics.json`` next to the rendered table.
    """

    def _record(name: str, recorder: Recorder) -> None:
        payload = recorder.record().to_dict()
        meta = payload.get("meta", {})
        engine = meta.get("engine") if isinstance(meta, dict) else None
        payload["environment"] = dict(
            environment_stanza(engine if isinstance(engine, str) else None)
        )
        path = results_dir / f"{name}.metrics.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _record
