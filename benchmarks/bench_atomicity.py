"""E17 (extension): atomicity refinement as a tolerance experiment.

The paper's motivating phenomenon — compilation destroys
fault-tolerance — run as a systematic experiment with the
fetch/execute pass of :mod:`repro.transform.atomicity`:

* the constant-write loop survives the pass;
* Dijkstra's 3-state ring does not: one non-atomic action yields a
  divergent cycle no fairness assumption removes;
* the synthesized wrapper restores stabilization — the paper's
  wrapper methodology, closing the loop on its own opening example.
"""

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.core.abstraction import AbstractionFunction
from repro.gcl.parser import parse_program
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state
from repro.synthesis import synthesize_wrapper
from repro.transform import sequentialize, sequentialize_action

HEAL = """
program heal
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""


def _compiled_ring(n: int):
    compiled = sequentialize_action(dijkstra_three_state(n), "bottom").compile()
    btr = btr_program(n).compile()
    base_alpha = btr3_abstraction(n)
    cs = compiled.schema

    def mapping(state):
        env = cs.unpack(state)
        return base_alpha(tuple(env[f"c.{j}"] for j in range(n)))

    alpha = AbstractionFunction(cs, btr.schema, mapping, name="alpha-seq")
    return compiled, btr, alpha


def test_e17_atomicity_survival_table(benchmark, record_table):
    def experiment():
        rows = []

        program = parse_program(HEAL)
        original = program.compile()
        compiled = sequentialize(program).compile()
        cs = compiled.schema
        alpha = AbstractionFunction(
            cs, original.schema,
            lambda state: (cs.value(state, "x"),), name="proj",
        )
        rows.append(
            {
                "system": "heal loop (constant write)",
                "survives sequentialization": check_stabilization(
                    compiled, original, alpha, stutter_insensitive=True,
                    compute_steps=False,
                ).holds,
            }
        )

        compiled, btr, alpha = _compiled_ring(3)
        rows.append(
            {
                "system": "Dijkstra-3, bottom action (strong fairness)",
                "survives sequentialization": check_stabilization(
                    compiled, btr, alpha, stutter_insensitive=True,
                    fairness="strong", compute_steps=False,
                ).holds,
            }
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert rows[0]["survives sequentialization"] is True
    assert rows[1]["survives sequentialization"] is False
    record_table(
        "e17_atomicity",
        format_table(rows, title="E17 does stabilization survive the compiler pass?"),
    )


def test_e17_synthesized_repair(benchmark, record_table):
    def experiment():
        compiled, btr, alpha = _compiled_ring(3)
        return synthesize_wrapper(compiled, btr, alpha, stutter_insensitive=True)

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds
    record_table(
        "e17_repair",
        "broken by the pass, repaired by synthesis:\n  " + result.summary(),
    )
