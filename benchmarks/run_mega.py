"""P09 mega-scale runner: one K-state ring through the shared engine.

Streams the full stabilization check of K-state(n, k) refining the
unidirectional token ring through the shared-memory engine under an
explicit ``--mem-budget``, and prints one JSON row: states checked,
wall seconds, **this process's own** peak RSS (``ru_maxrss``, which is
why the bench suite runs this module as a subprocess — the parent's
NumPy baseline and earlier sweeps must not pollute the high-water
mark), the verdict, the engine that actually ran, and the ``shm.*``
staging counters.

Standalone usage (the 16.7M-state acceptance point takes ~10 minutes):

    PYTHONPATH=src python benchmarks/run_mega.py --n 7 --k 7 \
        --mem-budget 16M
    PYTHONPATH=src python benchmarks/run_mega.py --n 8 --k 8 \
        --mem-budget 256M
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="stream one K-state ring through the shared engine"
    )
    parser.add_argument("--n", type=int, default=7, help="ring size")
    parser.add_argument("--k", type=int, default=7, help="token modulus")
    parser.add_argument(
        "--mem-budget", default="256M",
        help="working-set budget for the shared engine (e.g. 16M, 1G)",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="directory for out-of-core spill files (default: a temp dir)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--json", default=None,
        help="write the result row here instead of stdout",
    )
    args = parser.parse_args(argv)

    from repro.checker import check_stabilization
    from repro.kernel.shared import parse_mem_budget, using_memory_budget
    from repro.obs import Recorder
    from repro.rings import kstate_program, utr_abstraction, utr_program

    budget_bytes = parse_mem_budget(args.mem_budget)
    concrete = kstate_program(args.n, args.k)
    recorder = Recorder(kind="bench")
    recorder.annotate(
        experiment="p09_mega", n=args.n, k=args.k, engine="shared",
        budget=budget_bytes, workers=args.workers,
    )

    start = time.perf_counter()
    with using_memory_budget(args.mem_budget, spill_dir=args.spill_dir):
        result = check_stabilization(
            concrete,
            utr_program(args.n),
            utr_abstraction(args.n, args.k),
            compute_steps=False,
            engine="shared",
            workers=args.workers,
            instrumentation=recorder,
        )
    seconds = time.perf_counter() - start

    counters = recorder.record().counters
    row = {
        "n": args.n,
        "k": args.k,
        "states": concrete.schema().size(),
        "seconds": round(seconds, 3),
        "states_per_s": round(concrete.schema().size() / seconds),
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "budget_bytes": budget_bytes,
        "workers": args.workers,
        "holds": result.holds,
        "engine": result.engine,
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith(("shm.", "engine."))
        },
    }
    text = json.dumps(row, indent=2) + "\n"
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0 if result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
