"""P09/P10 mega-scale runner: one K-state ring through the shared engine.

Streams the full stabilization check of K-state(n, k) refining the
unidirectional token ring through the shared-memory engine under an
explicit ``--mem-budget``, and prints one JSON row: states checked,
wall seconds, **this process's own** peak RSS (``ru_maxrss``, which is
why the bench suite runs this module as a subprocess — the parent's
NumPy baseline and earlier sweeps must not pollute the high-water
mark), the chosen code width, the verdict, the engine that actually
ran, and the ``shm.*`` / ``kernel.tables.*`` staging counters.

``--ablate`` runs the P10 ablation grid instead: the same
configuration four times — everything on, then adaptive code-width
packing, cross-round table reuse, and the mmap visited backing each
switched off in turn — and prints one row per mode, so the
contribution of each axis (bytes spilled per state, table hits and
re-lowering avoided, states/s) is measured rather than asserted from
theory.  Ablation rows run with ``compute_steps=True``: the worst-case
phase re-walks the converged core region three to four times, which is
exactly the recurrence the table pool exists for (with
``compute_steps=False`` no chunk is ever walked a third time, so the
tables axis has nothing to serve).

Standalone usage:

    PYTHONPATH=src python benchmarks/run_mega.py --n 7 --k 7 \
        --mem-budget 16M
    PYTHONPATH=src python benchmarks/run_mega.py --n 7 --k 13 \
        --mem-budget 512M          # 62.7M states, the P10 smoke point
    PYTHONPATH=src python benchmarks/run_mega.py --n 9 --k 8 \
        --mem-budget 1G            # 134M states (REPRO_MEGA point)
    PYTHONPATH=src python benchmarks/run_mega.py --n 7 --k 7 \
        --mem-budget 16M --ablate
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

#: Ablation modes: name -> context-flag overrides.
ABLATION_MODES = (
    ("full", {}),
    ("no-pack", {"pack_codes": False}),
    ("no-tables", {"reuse_tables": False}),
    ("no-mmap", {"mmap_visited": False}),
)


def _run_once(
    args, budget_bytes: int, overrides: dict, compute_steps: bool = False
) -> dict:
    from repro.checker import check_stabilization
    from repro.kernel.shared import using_memory_budget
    from repro.obs import Recorder
    from repro.rings import kstate_program, utr_abstraction, utr_program

    concrete = kstate_program(args.n, args.k)
    recorder = Recorder(kind="bench")
    recorder.annotate(
        experiment="p09_mega", n=args.n, k=args.k, engine="shared",
        budget=budget_bytes, workers=args.workers, **overrides,
    )
    start = time.perf_counter()
    with using_memory_budget(
        args.mem_budget, spill_dir=args.spill_dir, **overrides
    ):
        result = check_stabilization(
            concrete,
            utr_program(args.n),
            utr_abstraction(args.n, args.k),
            compute_steps=compute_steps,
            engine="shared",
            workers=args.workers,
            instrumentation=recorder,
        )
    seconds = time.perf_counter() - start
    record = recorder.record()
    widths = [
        event.fields for event in record.events
        if event.name == "shm.code_width"
    ]
    size = concrete.schema().size()
    counters = {
        name: value
        for name, value in sorted(record.counters.items())
        if name.startswith(("shm.", "engine.", "kernel.tables."))
    }
    return {
        "n": args.n,
        "k": args.k,
        "states": size,
        "seconds": round(seconds, 3),
        "states_per_s": round(size / seconds),
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "budget_bytes": budget_bytes,
        "workers": args.workers,
        "code_width": widths[0]["width"] if widths else None,
        "spill_bytes_per_state": round(
            counters.get("shm.spill.bytes", 0) / size, 2
        ),
        "relowering_avoided_codes": counters.get(
            "kernel.tables.hit_codes", 0
        ),
        "holds": result.holds,
        "engine": result.engine,
        "counters": counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="stream one K-state ring through the shared engine"
    )
    parser.add_argument("--n", type=int, default=7, help="ring size")
    parser.add_argument("--k", type=int, default=7, help="token modulus")
    parser.add_argument(
        "--mem-budget", default="256M",
        help="working-set budget for the shared engine (e.g. 16M, 1.5G)",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="directory for out-of-core spill files (default: a temp dir)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--ablate", action="store_true",
        help="run the width/reuse/mmap ablation grid (one row per mode)",
    )
    parser.add_argument(
        "--json", default=None,
        help="write the result row(s) here instead of stdout",
    )
    args = parser.parse_args(argv)

    from repro.kernel.shared import parse_mem_budget

    budget_bytes = parse_mem_budget(args.mem_budget)
    if args.ablate:
        rows = []
        for mode, overrides in ABLATION_MODES:
            row = _run_once(args, budget_bytes, overrides, compute_steps=True)
            row["mode"] = mode
            rows.append(row)
        payload = rows
        ok = all(row["holds"] for row in rows)
    else:
        row = _run_once(args, budget_bytes, {})
        payload = row
        ok = row["holds"]

    text = json.dumps(payload, indent=2) + "\n"
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
