"""E14: verification cost vs ring size.

How the exhaustive decision procedures scale: state counts, transition
counts, and wall-clock per check for the two headline verifications
(Lemma 7 and Dijkstra-3 stabilization).  The benchmark fixture itself
provides the timing series; the table records the combinatorics.
"""

import pytest

from repro.analysis import format_table
from repro.checker import check_convergence_refinement, check_stabilization
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c1_program,
    dijkstra_three_state,
)


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_e14_lemma7_scaling(benchmark, n):
    btr = btr_program(n).compile()
    c1 = c1_program(n).compile()
    alpha = btr4_abstraction(n)

    result = benchmark.pedantic(
        check_convergence_refinement, args=(c1, btr, alpha), rounds=2, iterations=1
    )
    assert result.holds


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_e14_stabilization_scaling(benchmark, n):
    btr = btr_program(n).compile()
    dijkstra = dijkstra_three_state(n).compile()
    alpha = btr3_abstraction(n)

    result = benchmark.pedantic(
        check_stabilization, args=(dijkstra, btr, alpha), rounds=2, iterations=1
    )
    assert result.holds


def test_e14_recovery_depth_profile(benchmark, record_table):
    """The exact distribution of recovery depths (best-case daemon) for
    Dijkstra-3, bracketing the simulated times of E13 from below and
    the adversarial worst case from above."""

    def experiment():
        from repro.checker import convergence_profile

        rows = []
        for n in (3, 4, 5):
            btr = btr_program(n).compile()
            system = dijkstra_three_state(n).compile()
            result = check_stabilization(system, btr, btr3_abstraction(n))
            profile = convergence_profile(system, result.core)
            rows.append(
                {
                    "n": n,
                    "core (depth 0)": profile.get(0, 0),
                    "max min-depth": max(profile),
                    "worst case (adversarial)": result.worst_case_steps,
                    "states": system.schema.size(),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        assert row["max min-depth"] <= row["worst case (adversarial)"]
    record_table(
        "e14_recovery_depth",
        format_table(rows, title="E14b recovery-depth profile, Dijkstra-3"),
    )


def test_e14_combinatorics_table(benchmark, record_table):
    def experiment():
        rows = []
        for n in (3, 4, 5, 6):
            btr = btr_program(n).compile()
            dijkstra = dijkstra_three_state(n).compile()
            rows.append(
                {
                    "n": n,
                    "BTR states": btr.schema.size(),
                    "BTR transitions": btr.transition_count(),
                    "3-state states": dijkstra.schema.size(),
                    "3-state transitions": dijkstra.transition_count(),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert rows[-1]["BTR states"] == 4 ** (6 - 1)
    assert rows[-1]["3-state states"] == 3**6
    record_table(
        "e14_combinatorics",
        format_table(rows, title="E14 verified instance sizes"),
    )
