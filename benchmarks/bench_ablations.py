"""E15: ablations — remove a design ingredient, watch the property die.

Each ablation knocks out one load-bearing piece of the derivations and
confirms (with a witness) that the property the paper attributes to it
is lost:

* drop ``W1`` — the zero-token state deadlocks the abstract composite;
* drop ``W2`` — opposite tokens survive forever even under fairness;
* restrict Dijkstra-3's top guard to its C2 form (un-merge the
  wrapper) — zero-token states deadlock;
* shrink K below n-1 — the K-state ring diverges.

One ablation turns out to be a *positive* control: replacing the
central daemon by the synchronous or distributed daemon does NOT break
Dijkstra-3 at the verified sizes — the protocol is daemon-robust, a
stronger property than the paper needs.
"""

import pytest

from repro.analysis import format_table
from repro.checker import check_stabilization
from repro.core.composition import box_many
from repro.gcl.daemon import SynchronousDaemon
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c2_program,
    dijkstra_three_state,
    kstate_program,
    utr_program,
    w1_program,
    w2_program,
)
from repro.rings.mappings import utr_abstraction


def test_e15_drop_w1(benchmark):
    """Without W1 the abstract composite cannot recover from the
    zero-token state (even under strong fairness)."""

    def experiment():
        n = 4
        btr = btr_program(n).compile()
        composite = box_many([btr, w2_program(n).compile()], name="BTR[]W2")
        return check_stabilization(
            composite, btr, fairness="strong", compute_steps=False
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    assert result.result.witness.kind.value == "illegitimate-deadlock"


def test_e15_drop_w2(benchmark):
    """Without W2 two opposite tokens can never cancel: divergence even
    under strong fairness."""

    def experiment():
        n = 4
        btr = btr_program(n).compile()
        composite = box_many(
            [btr, w1_program(n, strict=True).compile()], name="BTR[]W1"
        )
        return check_stabilization(
            composite, btr, fairness="strong", compute_steps=False
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    assert result.result.witness.kind.value == "divergent-cycle"


def test_e15_unmerged_top_guard(benchmark):
    """C2 without the W1'' merge: the zero-token (uniform) states
    deadlock the bare C2."""

    def experiment():
        n = 4
        return check_stabilization(
            c2_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds


def test_e15_kstate_below_threshold(benchmark):
    def experiment():
        n, k = 5, 3
        return check_stabilization(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not result.holds
    assert result.result.witness.kind.value == "divergent-cycle"


def test_e15_modk_sweep(benchmark, record_table):
    """The Z_3 case analysis is load-bearing: the Dijkstra-3 action
    schema stabilizes for k = 3 and for no other counter modulus."""

    def experiment():
        from repro.rings import btrk_abstraction, dijkstra_three_state_modk

        n = 4
        btr = btr_program(n).compile()
        rows = []
        for k in (2, 3, 4, 5):
            result = check_stabilization(
                dijkstra_three_state_modk(n, k).compile(),
                btr,
                btrk_abstraction(n, k),
                compute_steps=False,
            )
            rows.append(
                {
                    "k": k,
                    "stabilizing": result.holds,
                    "failure": ""
                    if result.holds
                    else result.result.witness.kind.value,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert [row["stabilizing"] for row in rows] == [False, True, False, False]
    record_table(
        "e15_modk_sweep",
        format_table(rows, title="E15b the 3-state schema over counter moduli (n=4)"),
    )


def test_e15_daemon_robustness_positive_control(benchmark):
    """Dijkstra-3 remains stabilizing under the synchronous daemon —
    the one ablation that does *not* break anything (daemon
    robustness beyond the paper's central-daemon model)."""

    def experiment():
        n = 4
        system = dijkstra_three_state(n).compile(SynchronousDaemon())
        return check_stabilization(
            system,
            btr_program(n).compile(),
            btr3_abstraction(n),
            compute_steps=False,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert result.holds, result.format()


def test_e15_summary_table(benchmark, record_table):
    def experiment():
        n = 4
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        rows = []
        composite_no_w1 = box_many([btr, w2_program(n).compile()])
        rows.append(
            {
                "ablation": "drop W1 from BTR composite",
                "stabilizing": check_stabilization(
                    composite_no_w1, btr, fairness="strong", compute_steps=False
                ).holds,
            }
        )
        composite_no_w2 = box_many([btr, w1_program(n, strict=True).compile()])
        rows.append(
            {
                "ablation": "drop W2 from BTR composite",
                "stabilizing": check_stabilization(
                    composite_no_w2, btr, fairness="strong", compute_steps=False
                ).holds,
            }
        )
        rows.append(
            {
                "ablation": "bare C2 (no wrapper merge)",
                "stabilizing": check_stabilization(
                    c2_program(n).compile(), btr, alpha, compute_steps=False
                ).holds,
            }
        )
        rows.append(
            {
                "ablation": "K-state with K = n - 2",
                "stabilizing": check_stabilization(
                    kstate_program(5, 3).compile(),
                    utr_program(5).compile(),
                    utr_abstraction(5, 3),
                    compute_steps=False,
                ).holds,
            }
        )
        rows.append(
            {
                "ablation": "(positive control) Dijkstra-3, synchronous daemon",
                "stabilizing": check_stabilization(
                    dijkstra_three_state(n).compile(SynchronousDaemon()),
                    btr,
                    alpha,
                    compute_steps=False,
                ).holds,
            }
        )
        rows.append(
            {
                "ablation": "(positive control) unablated Dijkstra-3",
                "stabilizing": check_stabilization(
                    dijkstra_three_state(n).compile(), btr, alpha,
                    compute_steps=False,
                ).holds,
            }
        )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for row in rows:
        expected = row["ablation"].startswith("(positive control)")
        assert row["stabilizing"] is expected, row
    record_table(
        "e15_ablations", format_table(rows, title="E15 ablations (n = 4)")
    )
