"""Unit tests for repro.analysis (stats and sweeps)."""

import math

import pytest

from repro.analysis.stats import percentile, summarize
from repro.analysis.sweep import format_table, grid, run_sweep


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1, 2, 3, 4])
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["min"] == 1 and stats["max"] == 4
        assert stats["count"] == 4

    def test_single_sample_stdev_zero(self):
        assert summarize([5])["stdev"] == 0.0

    def test_empty_sample_yields_nans(self):
        stats = summarize([])
        assert stats["count"] == 0
        assert math.isnan(stats["mean"])


class TestGridAndSweep:
    def test_grid_cartesian_product(self):
        points = grid(n=[3, 4], k=[2, 3])
        assert len(points) == 4
        assert {"n": 3, "k": 2} in points

    def test_run_sweep_merges_results(self):
        points = grid(n=[1, 2])
        rows = run_sweep(points, lambda n: {"double": 2 * n})
        assert rows == [{"n": 1, "double": 2}, {"n": 2, "double": 4}]


class TestFormatTable:
    def test_contains_header_and_rows(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert "10" in text
        assert "0.1" in text  # floats rendered to one decimal

    def test_boolean_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert format_table([]) == ""
