"""The mod-k ablation: K = 3 is the unique working modulus.

The paper's Section 6 rewriting into Dijkstra's 3-state system hinges
on a case analysis valid only in Z_3.  This test sweeps the Dijkstra-3
action schema over counter moduli and confirms mechanically that the
schema stabilizes exactly at k = 3 — with *typed* failures elsewhere:
k = 2 breaks closure of the legitimate behaviour, k >= 4 introduces
illegitimate deadlocks.
"""

import pytest

from repro.checker import check_stabilization
from repro.rings import (
    btr3_abstraction,
    btr_program,
    btrk_abstraction,
    dijkstra_three_state,
    dijkstra_three_state_modk,
)


class TestModKAblation:
    @pytest.mark.parametrize("n", [3, 4])
    def test_k3_is_the_unique_working_modulus(self, n):
        btr = btr_program(n).compile()
        verdicts = {}
        for k in (2, 3, 4, 5):
            result = check_stabilization(
                dijkstra_three_state_modk(n, k).compile(),
                btr,
                btrk_abstraction(n, k),
                compute_steps=False,
            )
            verdicts[k] = result
        assert verdicts[3].holds
        for k in (2, 4, 5):
            assert not verdicts[k].holds, k

    def test_failure_modes_are_typed(self):
        n = 4
        btr = btr_program(n).compile()
        k2 = check_stabilization(
            dijkstra_three_state_modk(n, 2).compile(), btr,
            btrk_abstraction(n, 2), compute_steps=False,
        )
        assert k2.result.witness.kind.value == "closure-violation"
        k4 = check_stabilization(
            dijkstra_three_state_modk(n, 4).compile(), btr,
            btrk_abstraction(n, 4), compute_steps=False,
        )
        assert k4.result.witness.kind.value == "illegitimate-deadlock"

    def test_mod3_schema_equals_dijkstra_three_state(self):
        n = 4
        assert (
            dijkstra_three_state_modk(n, 3).compile()
            == dijkstra_three_state(n).compile()
        )

    def test_k_validation(self):
        with pytest.raises(ValueError):
            dijkstra_three_state_modk(4, 1)
