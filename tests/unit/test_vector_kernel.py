"""Unit tests for the vector engine's kernels, fixpoints, and fallback.

The NumPy-free surface (engine selection, fallback reasons, the packed
kernel's memo eviction) is tested unconditionally; the array kernel
and fixpoint parity tests skip on a pure-Python install, where the
engine-selection tests are exactly what must keep passing.
"""

from __future__ import annotations

import pytest

from repro.checker import check_self_stabilization, check_stabilization
from repro.gcl.action import GuardedAction
from repro.gcl.daemon import CentralDaemon, SynchronousDaemon
from repro.gcl.domain import EnumDomain, IntRange, ModularDomain
from repro.gcl.expr import Add, Const, Eq, Lt, Var
from repro.gcl.program import Program
from repro.gcl.variable import Variable
from repro.kernel import PackedKernel, StateInterner, image_codes
from repro.kernel.vector import (
    MAX_VECTOR_CELLS,
    NUMPY_MISSING_REASON,
    numpy_available,
    unlowerable_reason,
    vector_fallback_reason,
)
from repro.obs import Recorder
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    btrk_abstraction,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed"
)


class TestClearMemo:
    def test_clear_memo_counts_and_resets(self):
        kernel = PackedKernel.from_program(dijkstra_three_state(3))
        before = [kernel.successors(code) for code in range(5)]
        assert kernel.clear_memo() == 5
        assert kernel.clear_memo() == 0
        assert [kernel.successors(code) for code in range(5)] == before

    def test_checker_evicts_abstract_memo_between_phases(self):
        recorder = Recorder()
        result = check_stabilization(
            dijkstra_three_state(3), btr_program(3), btr3_abstraction(3),
            engine="packed", instrumentation=recorder,
        )
        assert result.holds
        counters = recorder.record().counters
        assert counters.get("kernel.memo.evictions", 0) > 0

    def test_self_stabilization_shares_the_kernel_and_keeps_its_memo(self):
        recorder = Recorder()
        check_self_stabilization(
            dijkstra_three_state(3), engine="packed",
            instrumentation=recorder,
        )
        assert "kernel.memo.evictions" not in recorder.record().counters


class TestFallbackReasons:
    def test_missing_numpy_is_the_first_reason(self, monkeypatch):
        from repro.kernel.vector import availability

        monkeypatch.setattr(availability, "HAVE_NUMPY", False)
        assert vector_fallback_reason(utr_program(3)) == NUMPY_MISSING_REASON

    def test_non_central_daemon_has_no_lowering(self):
        reason = unlowerable_reason(utr_program(3), SynchronousDaemon())
        assert reason is not None and "daemon" in reason

    def test_central_daemon_rings_all_lower(self):
        for program in (
            utr_program(4),
            btr_program(4),
            dijkstra_three_state(4),
            kstate_program(4, 4),
        ):
            assert unlowerable_reason(program, CentralDaemon()) is None

    def test_non_integer_domain_refuses(self):
        program = Program(
            "strings",
            [Variable("x", EnumDomain(("a", "b")))],
            [GuardedAction("nop", Eq(Var("x"), Var("x")), {"x": Var("x")})],
        )
        reason = unlowerable_reason(program)
        assert reason is not None and "domain" in reason

    def test_cell_ceiling_refuses(self):
        variables = [Variable(f"v{i}", ModularDomain(8)) for i in range(10)]
        program = Program(
            "huge", variables,
            [GuardedAction("nop", Eq(Var("v0"), Var("v0")), {"v0": Var("v0")})],
        )
        assert program.schema().size() * (1 + 10) > MAX_VECTOR_CELLS
        reason = unlowerable_reason(program)
        assert reason is not None and "ceiling" in reason

    def test_vector_falls_back_to_packed_with_reason(self, monkeypatch):
        from repro.kernel.vector import availability

        monkeypatch.setattr(availability, "HAVE_NUMPY", False)
        recorder = Recorder()
        result = check_stabilization(
            dijkstra_three_state(3), btr_program(3), btr3_abstraction(3),
            engine="vector", instrumentation=recorder,
        )
        assert result.holds
        record = recorder.record()
        assert record.counters.get("engine.fallback.packed") == 1
        assert record.counters.get("engine.packed") == 1
        assert "engine.vector" not in record.counters
        events = [
            event for event in record.events if event.name == "engine.fallback"
        ]
        assert events and events[0].fields["requested"] == "vector"
        assert events[0].fields["reason"] == NUMPY_MISSING_REASON


@needs_numpy
class TestVectorKernelParity:
    @pytest.mark.parametrize(
        "program",
        [dijkstra_three_state(3), kstate_program(3, 3), btr_program(3)],
        ids=["dijkstra3", "kstate3", "btr3"],
    )
    def test_program_lowering_matches_packed_successors(self, program):
        from repro.kernel.vector import VectorKernel

        vector = VectorKernel.from_program(program)
        packed = PackedKernel.from_program(program)
        assert vector.initial_codes == packed.initial_codes
        for code in range(packed.size):
            assert vector.successors(code) == packed.successors(code), code

    def test_system_wrapping_matches_packed_successors(self):
        from repro.kernel.vector import VectorKernel

        system = dijkstra_three_state(3).compile()
        vector = VectorKernel.from_system(system)
        packed = PackedKernel.from_system(system)
        for code in range(packed.size):
            assert vector.successors(code) == packed.successors(code), code

    def test_succ_pairs_dedups_and_sorts(self):
        import numpy as np

        from repro.kernel.vector import as_vector_kernel

        kernel = as_vector_kernel(dijkstra_three_state(3))
        codes = np.arange(kernel.size, dtype=np.int64)
        origins, targets = kernel.succ_pairs(codes)
        keys = origins * kernel.size + targets
        assert bool((np.diff(keys) > 0).all())

    def test_has_edge_agrees_with_successor_sets(self):
        import numpy as np

        from repro.kernel.vector import as_vector_kernel

        kernel = as_vector_kernel(kstate_program(3, 3))
        for source in range(kernel.size):
            successors = set(kernel.successors(source))
            targets = np.arange(kernel.size, dtype=np.int64)
            sources = np.full(kernel.size, source, dtype=np.int64)
            flags = kernel.has_edge(sources, targets)
            assert {int(t) for t in targets[flags]} == successors

    def test_out_of_domain_write_raises_compile_programs_error(self):
        from repro.core.errors import GCLError
        from repro.kernel.vector import VectorKernel

        program = Program(
            "overflow",
            [Variable("x", IntRange(0, 2))],
            [
                GuardedAction(
                    "inc", Lt(Var("x"), Const(5)),
                    {"x": Add(Var("x"), Const(1))},
                )
            ],
        )
        packed = PackedKernel.from_program(program)
        with pytest.raises(GCLError) as packed_error:
            packed.successors(packed.interner.size - 1)
        with pytest.raises(GCLError) as vector_error:
            VectorKernel.from_program(program)
        assert str(vector_error.value) == str(packed_error.value)


@needs_numpy
class TestVectorFixpointParity:
    def test_reachable_matches_packed(self):
        import numpy as np

        from repro.kernel import codes_of_flags, packed_reachable
        from repro.kernel.vector import as_vector_kernel, vector_reachable

        program = kstate_program(3, 3)
        packed = PackedKernel.from_program(program)
        vector = as_vector_kernel(program)
        packed_flags = packed_reachable(
            packed.successors, packed.initial_codes, packed.size
        )
        vector_flags = vector_reachable(vector, vector.initial_array)
        assert list(codes_of_flags(packed_flags)) == [
            int(code) for code in np.nonzero(vector_flags)[0]
        ]

    def test_terminals_match_packed(self):
        import numpy as np

        from repro.kernel import packed_terminals
        from repro.kernel.vector import as_vector_kernel, vector_terminals

        program = dijkstra_three_state(3)
        packed = PackedKernel.from_program(program)
        vector = as_vector_kernel(program)
        everywhere = bytearray(b"\x01") * packed.size
        region = np.ones(vector.size, dtype=bool)
        assert packed_terminals(packed.successors, everywhere) == [
            int(code) for code in vector_terminals(vector, region)
        ]

    def test_cycle_detection_matches_packed(self):
        import numpy as np

        from repro.kernel import packed_has_cycle
        from repro.kernel.vector import as_vector_kernel, vector_has_cycle

        program = dijkstra_three_state(3)
        packed = PackedKernel.from_program(program)
        vector = as_vector_kernel(program)
        everywhere = bytearray(b"\x01") * packed.size
        region = np.ones(vector.size, dtype=bool)
        assert vector_has_cycle(vector, region) == packed_has_cycle(
            packed.successors, everywhere
        )


@needs_numpy
class TestVectorImageTables:
    @pytest.mark.parametrize(
        "alpha,spec",
        [
            (utr_abstraction(4, 4), utr_program(4)),
            (btr3_abstraction(4), btr_program(4)),
            (btr4_abstraction(3), btr_program(3)),
            (btrk_abstraction(3, 5), btr_program(3)),
        ],
        ids=["utr", "btr3", "btr4", "btrk"],
    )
    def test_batch_tables_equal_scalar_tables(self, alpha, spec):
        import numpy as np

        from repro.kernel.vector import vector_image_codes

        concrete = StateInterner(alpha.concrete_schema)
        abstract = StateInterner(spec.schema())
        scalar = np.asarray(
            image_codes(concrete, abstract, alpha), dtype=np.int64
        )
        assert np.array_equal(
            scalar, vector_image_codes(concrete, abstract, alpha)
        )

    def test_identity_is_an_arange(self):
        import numpy as np

        from repro.kernel.vector import vector_image_codes

        interner = StateInterner(utr_program(3).schema())
        table = vector_image_codes(interner, interner, None)
        assert np.array_equal(table, np.arange(interner.size))

    def test_mismatched_schema_encodes_minus_one_like_scalar(self):
        import numpy as np

        from repro.kernel.vector import vector_image_codes

        alpha = utr_abstraction(4, 3)
        concrete = StateInterner(alpha.concrete_schema)
        abstract = StateInterner(btr_program(4).schema())
        scalar = np.asarray(
            image_codes(concrete, abstract, alpha), dtype=np.int64
        )
        assert np.array_equal(
            scalar, vector_image_codes(concrete, abstract, alpha)
        )

    def test_hookless_abstraction_falls_back_to_the_scalar_loop(self):
        import numpy as np

        from repro.core.abstraction import AbstractionFunction
        from repro.kernel.vector import vector_image_codes

        schema = utr_program(3).schema()
        alpha = AbstractionFunction(
            schema, schema, lambda state: state, name="opaque"
        )
        assert alpha.array_mapping is None
        concrete = StateInterner(schema)
        table = vector_image_codes(concrete, concrete, alpha)
        assert np.array_equal(table, np.arange(concrete.size))
