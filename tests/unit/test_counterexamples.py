"""Unit tests for the three Section 1 counterexamples."""

import pytest

from repro.checker import (
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
)
from repro.counterexamples.bidding import (
    MAX_INT,
    SortedListBiddingServer,
    SpecBiddingServer,
    best_k,
    demonstrate,
    tolerance_holds,
)
from repro.counterexamples.figure1 import (
    STAR,
    figure1_abstract,
    figure1_concrete,
)
from repro.counterexamples.java_compile import (
    BYTECODE,
    abstract_loop_system,
    bytecode_abstraction,
    bytecode_system,
    corruption_states,
    vm_step,
)


class TestVM:
    def test_program_listing_matches_paper(self):
        assert BYTECODE[0].render() == "iconst_0"
        assert BYTECODE[2].render() == "goto 7"
        assert BYTECODE[9].render() == "if_icmpeq 5"
        assert BYTECODE[12].render() == "return"

    def test_normal_execution_loops_forever(self):
        config = (0, 0, -1, -1)
        seen = set()
        for _ in range(50):
            config = vm_step(config)
            assert config is not None
            assert config[0] != 13, "healthy run must never reach return"
            if config in seen:
                break
            seen.add(config)
        assert config in seen  # the run is periodic

    def test_halted_configuration_is_terminal(self):
        assert vm_step((13, 0, -1, -1)) is None

    def test_corrupted_comparison_escapes_the_loop(self):
        # pc=8, stacked copy 0, local corrupted to 1 (the paper's fault).
        config = (8, 1, 0, -1)
        while config[0] != 13:
            config = vm_step(config)
        assert config[0] == 13

    def test_corruption_states_are_the_paper_fault(self):
        states = corruption_states()
        assert (8, 1, 0, -1) in states
        assert (8, 0, 1, -1) in states
        assert len(states) == 2


class TestE01CompiledLoop:
    def test_abstract_loop_is_self_stabilizing(self):
        assert check_self_stabilization(abstract_loop_system()).holds

    def test_bytecode_init_refines_abstract(self):
        result = check_init_refinement(
            bytecode_system(),
            abstract_loop_system(),
            bytecode_abstraction(),
            stutter_insensitive=True,
        )
        assert result.holds, result.format()

    def test_bytecode_is_not_stabilizing(self):
        result = check_stabilization(
            bytecode_system(),
            abstract_loop_system(),
            bytecode_abstraction(),
            stutter_insensitive=True,
        )
        assert not result.holds


class TestE02Bidding:
    def test_fault_free_equivalence(self):
        bids = [5, 1, 9, 7, 3, 8]
        spec, impl = SpecBiddingServer(3), SortedListBiddingServer(3)
        for value in bids:
            spec.bid(value)
            impl.bid(value)
        assert spec.winners() == impl.winners() == best_k(bids, 3)

    def test_low_bid_rejected_by_both(self):
        spec, impl = SpecBiddingServer(2), SortedListBiddingServer(2)
        for value in (10, 20):
            spec.bid(value)
            impl.bid(value)
        assert not spec.bid(5)
        assert not impl.bid(5)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SpecBiddingServer(0)
        with pytest.raises(ValueError):
            SortedListBiddingServer(0)

    def test_corrupted_head_blocks_implementation(self):
        impl = SortedListBiddingServer(2)
        impl.bid(1)
        impl.bid(2)
        impl.corrupt(0, MAX_INT)
        assert not impl.bid(100)

    def test_spec_survives_corruption(self):
        spec = SpecBiddingServer(2)
        spec.bid(1)
        spec.bid(2)
        spec.corrupt(spec.min_index(), MAX_INT)
        assert spec.bid(100)

    def test_tolerance_criterion(self):
        assert tolerance_holds([9, 8], [9, 8, 7], 3) is True
        assert tolerance_holds([1], [9, 8, 7], 3) is False

    def test_demonstrate_matches_paper(self):
        outcome = demonstrate()
        assert outcome["spec_tolerant"] is True
        assert outcome["impl_tolerant"] is False


class TestE03Figure1:
    def test_init_refinement_holds(self):
        assert check_init_refinement(figure1_concrete(), figure1_abstract()).holds

    def test_abstract_is_self_stabilizing(self):
        assert check_self_stabilization(figure1_abstract()).holds

    def test_concrete_is_not_stabilizing_to_abstract(self):
        result = check_stabilization(figure1_concrete(), figure1_abstract())
        assert not result.holds
        # the witness is exactly the fault state s*.
        assert result.result.witness.states == ((STAR,),)
