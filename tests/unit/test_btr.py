"""Unit tests for the abstract BTR and its wrappers (paper, Section 3)."""

import pytest

from repro.checker import check_stabilization
from repro.core.composition import box_many
from repro.gcl.process import check_model_compliance
from repro.rings.btr import btr_actions, btr_processes, btr_program
from repro.rings.tokens import count_tokens, state_with_tokens, tokens_in_state
from repro.rings.topology import Ring
from repro.rings.wrappers_abstract import w1_guard, w1_program, w2_program


class TestBTRStructure:
    def test_action_count(self):
        # top + bottom + 2 per interior process.
        assert len(btr_actions(Ring(5))) == 2 + 2 * 3
        assert len(btr_actions(Ring(2))) == 2

    def test_initial_states_are_single_token(self):
        program = btr_program(4)
        schema = program.schema()
        initials = list(program.initial_states())
        assert len(initials) == 6
        assert all(count_tokens(schema, s) == 1 for s in initials)

    def test_fits_abstract_model_not_concrete(self):
        processes = btr_processes(Ring(4))
        assert check_model_compliance(processes, writes_restricted=False) == []
        violations = check_model_compliance(processes, writes_restricted=True)
        assert violations, "BTR writes neighbour state by design"
        assert all(v.kind == "write" for v in violations)


class TestBTRSemantics:
    @pytest.fixture
    def compiled(self):
        return btr_program(4).compile()

    def test_token_moves_up(self, compiled):
        schema = compiled.schema
        state = state_with_tokens(schema, ["ut.1"])
        (successor,) = compiled.successors(state)
        assert tokens_in_state(schema, successor) == ("ut.2",)

    def test_token_bounces_at_top(self, compiled):
        schema = compiled.schema
        state = state_with_tokens(schema, ["ut.3"])
        (successor,) = compiled.successors(state)
        assert tokens_in_state(schema, successor) == ("dt.2",)

    def test_token_bounces_at_bottom(self, compiled):
        schema = compiled.schema
        state = state_with_tokens(schema, ["dt.0"])
        (successor,) = compiled.successors(state)
        assert tokens_in_state(schema, successor) == ("ut.1",)

    def test_no_token_means_deadlock(self, compiled):
        assert compiled.is_terminal(state_with_tokens(compiled.schema, []))

    def test_actions_never_create_tokens(self, compiled):
        schema = compiled.schema
        for source, target in compiled.transitions():
            assert count_tokens(schema, target) <= count_tokens(schema, source)

    def test_merging_loses_a_token(self, compiled):
        schema = compiled.schema
        state = state_with_tokens(schema, ["dt.0", "ut.1"])
        targets = compiled.successors(state)
        counts = {count_tokens(schema, t) for t in targets}
        assert 1 in counts  # firing bottom merges into ut.1

    def test_reachable_behaviour_is_token_circulation(self, compiled):
        schema = compiled.schema
        for state in compiled.reachable():
            assert count_tokens(schema, state) == 1


class TestWrappers:
    def test_w1_guard_literal_allows_top_token(self):
        ring = Ring(4)
        program = btr_program(4)
        schema = program.schema()
        guard = w1_guard(ring, strict=False)
        env = schema.unpack(state_with_tokens(schema, ["ut.3"]))
        assert guard.eval(env) is True
        strict_guard = w1_guard(ring, strict=True)
        assert strict_guard.eval(env) is False

    def test_w1_creates_token_from_nothing(self):
        system = w1_program(4, strict=True).compile()
        schema = system.schema
        empty = state_with_tokens(schema, [])
        (successor,) = system.successors(empty)
        assert tokens_in_state(schema, successor) == ("ut.3",)

    def test_w1_has_no_initial_states(self):
        assert w1_program(3).compile().initial == frozenset()

    def test_w2_cancels_colocated_tokens(self):
        system = w2_program(4).compile()
        schema = system.schema
        state = state_with_tokens(schema, ["ut.2", "dt.2"])
        (successor,) = system.successors(state)
        assert tokens_in_state(schema, successor) == ()

    def test_w2_ignores_separated_tokens(self):
        system = w2_program(4).compile()
        schema = system.schema
        state = state_with_tokens(schema, ["ut.1", "dt.2"])
        assert system.is_terminal(state)

    def test_w2_on_two_ring_is_null(self):
        assert w2_program(2).compile().transition_count() == 0


class TestTheorem6:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_holds_under_strong_fairness(self, n):
        btr = btr_program(n).compile()
        composite = box_many(
            [btr, w1_program(n).compile(), w2_program(n).compile()],
            name="BTR[]W1[]W2",
        )
        result = check_stabilization(
            composite, btr, fairness="strong", compute_steps=False
        )
        assert result.holds, result.format()

    def test_fails_under_unfair_daemon(self):
        """The reproduction's finding: Theorem 6 needs strong fairness."""
        n = 4
        btr = btr_program(n).compile()
        composite = box_many(
            [btr, w1_program(n, strict=True).compile(), w2_program(n).compile()],
            name="BTR[]W1s[]W2",
        )
        for fairness in ("none", "weak"):
            assert not check_stabilization(
                composite, btr, fairness=fairness, compute_steps=False
            ).holds
