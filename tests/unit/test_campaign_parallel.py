"""Unit tests for the parallel campaign executor and its cache.

The contract: a campaign produces the same per-cell outcomes at every
worker count (sub-seeds derive from cell ids, never execution order);
checkpoint rows are keyed by cell id so a sweep written under one
``--workers`` value resumes correctly under any other; and cached
verification cells are served from disk with a visible marker.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignConfig,
    CellResult,
    CellStatus,
    build_grid,
    run_campaign,
)
from repro.core.errors import SimulationError
from repro.obs import load_tagged_lines
from repro.parallel import parallel_available

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)


def small_grid(with_check=False):
    return build_grid(
        systems=("dijkstra3",), sizes=(3,), schedulers=("random",),
        injectors=("corrupt-all",), seeds=2, with_check=with_check,
    )


def quick_config(**overrides):
    defaults = dict(steps=2000, deadline=30.0, retries=1, seed=7)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestConfigValidation:
    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SimulationError):
            CampaignConfig(workers=0)


class TestParallelExecution:
    def test_outcomes_identical_at_every_worker_count(self):
        cells = small_grid()
        sequential = run_campaign(cells, quick_config(workers=1))
        parallel = run_campaign(cells, quick_config(workers=2))

        def stable(result):  # everything but the wall clock
            payload = result.to_payload()
            payload.pop("seconds")
            return payload

        assert [stable(r) for r in sequential.results] == [
            stable(r) for r in parallel.results
        ]

    def test_results_are_assembled_in_grid_order(self):
        cells = small_grid(with_check=True)
        campaign = run_campaign(cells, quick_config(workers=2))
        assert campaign.ok
        assert [r.cell_id for r in campaign.results] == [
            c.cell_id() for c in cells
        ]

    def test_closure_executors_survive_the_fork(self):
        """Custom executors may be closures; the pool must carry them
        into workers by fork inheritance, not pickling."""
        marker = {"detail": "closure-made"}

        def executor(cell, config):
            return CellResult(
                cell.cell_id(), CellStatus.CONVERGED, 1, 0.0,
                detail=marker["detail"],
            )

        cells = small_grid()
        campaign = run_campaign(cells, quick_config(workers=2),
                                executor=executor)
        assert all(r.detail == "closure-made" for r in campaign.results)


class TestResumeAcrossWorkerCounts:
    def test_checkpoint_from_parallel_run_resumes_sequentially(self, tmp_path):
        """Regression: rows are keyed by cell id, not worker ordering —
        a checkpoint written at one worker count must resume cleanly at
        any other, re-executing nothing."""
        checkpoint = tmp_path / "campaign.jsonl"
        cells = small_grid(with_check=True)
        first = run_campaign(
            cells, quick_config(workers=2, checkpoint=checkpoint)
        )
        assert first.executed == len(cells)
        resumed = run_campaign(
            cells, quick_config(workers=1, checkpoint=checkpoint), resume=True
        )
        assert resumed.executed == 0
        assert resumed.skipped == len(cells)
        assert [r.to_payload() for r in resumed.results] == [
            r.to_payload() for r in first.results
        ]

    def test_partial_parallel_checkpoint_resumes_under_more_workers(
        self, tmp_path
    ):
        """A checkpoint holding only some cells (an interrupted sweep)
        fills in exactly the missing ones, at any worker count."""
        checkpoint = tmp_path / "campaign.jsonl"
        cells = small_grid(with_check=True)
        run_campaign(cells, quick_config(workers=2, checkpoint=checkpoint))
        # Drop the final row, as if the sweep died mid-flight.
        lines = checkpoint.read_text().strip().splitlines()
        checkpoint.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        resumed = run_campaign(
            cells, quick_config(workers=3, checkpoint=checkpoint), resume=True
        )
        assert resumed.executed == 1
        assert resumed.skipped == len(cells) - 1
        assert [r.cell_id for r in resumed.results] == [
            c.cell_id() for c in cells
        ]

    def test_interrupted_style_checkpoint_resumes_missing_cells(
        self, tmp_path
    ):
        """Checkpoint rows landing in completion (not grid) order must
        not confuse resume: executed cells are skipped wherever their
        rows sit in the file."""
        checkpoint = tmp_path / "campaign.jsonl"
        cells = small_grid(with_check=True)
        full = run_campaign(
            cells, quick_config(workers=2, checkpoint=checkpoint)
        )
        # Rewrite the checkpoint with the cell rows reversed — a
        # completion order no sequential sweep would produce.
        lines = checkpoint.read_text().strip().splitlines()
        header, rows = lines[0], lines[1:]
        checkpoint.write_text(
            "\n".join([header] + rows[::-1]) + "\n", encoding="utf-8"
        )
        resumed = run_campaign(
            cells, quick_config(workers=1, checkpoint=checkpoint), resume=True
        )
        assert resumed.executed == 0
        assert [r.cell_id for r in resumed.results] == [
            c.cell_id() for c in cells
        ]
        assert [r.to_payload() for r in resumed.results] == [
            r.to_payload() for r in full.results
        ]


class TestCheckCellCache:
    def test_second_campaign_hits_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cells = [c for c in small_grid(with_check=True) if c.kind == "check"]
        config = quick_config(cache_dir=cache_dir, state_budget=100_000)
        first = run_campaign(cells, config)
        assert "[cached]" not in first.results[0].detail
        second = run_campaign(cells, config)
        assert second.results[0].detail.endswith("[cached]")
        assert second.results[0].status is first.results[0].status

    def test_cache_rows_survive_checkpointing(self, tmp_path):
        """A cached verdict lands in the checkpoint like any other row
        and restores on resume."""
        cache_dir = tmp_path / "cache"
        checkpoint = tmp_path / "cp.jsonl"
        cells = [c for c in small_grid(with_check=True) if c.kind == "check"]
        run_campaign(cells, quick_config(cache_dir=cache_dir))
        run_campaign(
            cells,
            quick_config(cache_dir=cache_dir, checkpoint=checkpoint),
        )
        rows = load_tagged_lines(checkpoint, "campaign-cell")
        assert rows and rows[0]["detail"].endswith("[cached]")

    def test_simulation_cells_are_never_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cells = small_grid()  # simulations only
        run_campaign(cells, quick_config(cache_dir=cache_dir))
        assert not cache_dir.exists() or not list(cache_dir.glob("*/*.json"))
