"""Unit tests for the metrics registry (gauges and histograms)."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    GaugeStats,
    HistogramStats,
    MetricsRegistry,
    merge_gauges,
    merge_histograms,
)


class TestGauges:
    def test_last_value_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("rss", 100, at=0.1)
        registry.set_gauge("rss", 90, at=0.2)
        assert registry.gauges()["rss"] == GaugeStats(90.0, 0.2)

    def test_merge_gauge_keeps_latest_sample(self):
        registry = MetricsRegistry()
        registry.set_gauge("rss", 100, at=0.5)
        registry.merge_gauge("rss", GaugeStats(200.0, 0.1))
        assert registry.gauges()["rss"].value == 100.0
        registry.merge_gauge("rss", GaugeStats(300.0, 0.9))
        assert registry.gauges()["rss"].value == 300.0

    def test_merge_gauges_commutative(self):
        a = {"rss": GaugeStats(100.0, 0.5), "frontier": GaugeStats(8.0, 0.2)}
        b = {"rss": GaugeStats(200.0, 0.4), "depth": GaugeStats(3.0, 0.1)}
        assert merge_gauges([a, b]) == merge_gauges([b, a])
        assert merge_gauges([a, b])["rss"] == GaugeStats(100.0, 0.5)

    def test_equal_timestamps_break_ties_on_value(self):
        # The commutativity guarantee must hold even for identical
        # sample times, so the larger value is chosen deterministically.
        a = {"g": GaugeStats(1.0, 0.5)}
        b = {"g": GaugeStats(2.0, 0.5)}
        assert merge_gauges([a, b]) == merge_gauges([b, a])
        assert merge_gauges([a, b])["g"].value == 2.0


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        for value in (1, 2, 3, 100):
            registry.observe("h", value, bounds=(2.0, 10.0))
        stats = registry.histograms()["h"]
        assert stats.bounds == (2.0, 10.0)
        # <=2: {1, 2}; <=10: {3}; overflow: {100}.
        assert stats.counts == (2, 1, 1)
        assert stats.total == 106.0
        assert stats.count == 4

    def test_default_buckets_cover_powers_of_two(self):
        registry = MetricsRegistry()
        registry.observe("h", 3)
        stats = registry.histograms()["h"]
        assert stats.bounds == DEFAULT_BUCKETS
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] == 2.0**20

    def test_first_observation_fixes_bounds(self):
        registry = MetricsRegistry()
        registry.observe("h", 1, bounds=(5.0,))
        registry.observe("h", 2, bounds=(99.0,))  # ignored
        assert registry.histograms()["h"].bounds == (5.0,)

    def test_cumulative_counts(self):
        stats = HistogramStats((1.0, 2.0), (3, 1, 2), 10.0, 6)
        assert stats.cumulative() == (3, 4, 6)

    def test_non_ascending_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.observe("h", 1, bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.observe("h2", 1, bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.observe("h3", 1, bounds=())

    def test_ascending_bounds_accepted(self):
        registry = MetricsRegistry()
        registry.observe("h", 1, bounds=(1.0, 2.0, 4.0))
        assert registry.histograms()["h"].bounds == (1.0, 2.0, 4.0)

    def test_merge_histogram_sums_elementwise(self):
        registry = MetricsRegistry()
        registry.observe("h", 1, bounds=(2.0,))
        registry.merge_histogram("h", HistogramStats((2.0,), (4, 2), 9.0, 6))
        stats = registry.histograms()["h"]
        assert stats.counts == (5, 2)
        assert stats.total == 10.0
        assert stats.count == 7

    def test_merge_histogram_rejects_diverging_bounds(self):
        registry = MetricsRegistry()
        registry.observe("h", 1, bounds=(2.0,))
        with pytest.raises(ValueError):
            registry.merge_histogram(
                "h", HistogramStats((3.0,), (1, 0), 1.0, 1)
            )

    def test_merge_histograms_commutative(self):
        a = {"h": HistogramStats((2.0,), (1, 0), 1.0, 1)}
        b = {"h": HistogramStats((2.0,), (0, 1), 5.0, 1)}
        assert merge_histograms([a, b]) == merge_histograms([b, a])
        assert merge_histograms([a, b])["h"].counts == (1, 1)

    def test_merge_histograms_diverging_bounds_raise(self):
        a = {"h": HistogramStats((2.0,), (1, 0), 1.0, 1)}
        b = {"h": HistogramStats((4.0,), (1, 0), 1.0, 1)}
        with pytest.raises(ValueError):
            merge_histograms([a, b])
