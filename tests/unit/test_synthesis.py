"""Unit tests for automatic wrapper synthesis."""

import pytest

from repro.core.errors import VerificationError
from repro.core.state import StateSchema
from repro.core.system import System
from repro.gcl.parser import parse_program
from repro.rings import btr3_abstraction, btr_program, c2_program
from repro.synthesis import synthesize_wrapper

CASCADE = """
program cascade
var x.0, x.1, x.2 : mod 3
action copy.1 :: x.1 != x.0 --> x.1 := x.0
action copy.2 :: x.2 != x.1 --> x.2 := x.1
init x.0 == 0 && x.1 == 0 && x.2 == 0
"""


@pytest.fixture
def cascade():
    return parse_program(CASCADE).compile()


class TestCascadeSynthesis:
    def test_composite_verifies(self, cascade):
        result = synthesize_wrapper(cascade, cascade)
        assert result.holds, result.verification.format()

    def test_deadlock_only_case_needs_no_fairness(self, cascade):
        result = synthesize_wrapper(cascade, cascade)
        assert result.fairness == "none"

    def test_wrapper_disabled_on_the_core(self, cascade):
        from repro.checker import behavioural_core

        result = synthesize_wrapper(cascade, cascade)
        core = behavioural_core(cascade, cascade)
        for source, _target in result.wrapper.transitions():
            assert source not in core

    def test_wrapper_has_no_initial_states(self, cascade):
        result = synthesize_wrapper(cascade, cascade)
        assert result.wrapper.initial == frozenset()

    def test_repairs_are_hamming_minimal_into_the_core(self, cascade):
        from repro.checker import behavioural_core

        result = synthesize_wrapper(cascade, cascade)
        core = sorted(behavioural_core(cascade, cascade), key=repr)
        for source, target in result.wrapper.transitions():
            assert target in core
            best = min(
                sum(1 for a, b in zip(source, c) if a != b) for c in core
            )
            actual = sum(1 for a, b in zip(source, target) if a != b)
            assert actual == best

    def test_summary_mentions_counts(self, cascade):
        result = synthesize_wrapper(cascade, cascade)
        assert "repair" in result.summary()


class TestRingSynthesis:
    def test_bare_btr_gets_a_stabilizer(self):
        """The synthesized wrapper plays the role of W1 [] W2 for the
        abstract ring (strong fairness, like the paper's wrappers)."""
        btr = btr_program(4).compile()
        result = synthesize_wrapper(btr, btr)
        assert result.holds
        assert result.fairness == "strong"

    def test_bare_c2_repairs_verify_unfairly(self):
        """Better than the paper's hand-built composite: direct repairs
        avoid the crossing schedules, so no fairness is needed."""
        n = 4
        result = synthesize_wrapper(
            c2_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
        )
        assert result.holds
        assert result.fairness == "none"
        assert len(result.repaired_states) <= 15

    def test_repair_all_outside_is_bigger_but_still_correct(self):
        n = 3
        sparse = synthesize_wrapper(
            c2_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
        )
        full = synthesize_wrapper(
            c2_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            repair_all_outside=True,
        )
        assert full.holds
        assert len(full.repaired_states) >= len(sparse.repaired_states)


class TestDegenerateInputs:
    def test_empty_core_is_an_error(self):
        schema = StateSchema({"v": (0, 1)})
        # the system leaves its only legitimate state immediately.
        system = System(schema, [((0,), (1,)), ((1,), (0,))], initial=[(0,)])
        spec = System(schema, [((0,), (0,))], initial=[(0,)])
        with pytest.raises(VerificationError):
            synthesize_wrapper(system, spec)

    def test_already_stabilizing_system_gets_an_empty_or_tiny_wrapper(self):
        schema = StateSchema({"v": (0, 1, 2)})
        system = System(
            schema,
            [((0,), (1,)), ((1,), (0,)), ((2,), (0,))],
            initial=[(0,)],
        )
        result = synthesize_wrapper(system, system)
        assert result.holds
        assert result.wrapper.transition_count() == 0
