"""Unit tests for the lazy (PEP 562) exports of repro.core."""

import importlib
import sys

import pytest


class TestLazyCoreExports:
    def test_lazy_names_resolve(self):
        import repro.core as core

        assert callable(core.check_stabilization)
        assert callable(core.theorem1_instance)
        assert callable(core.convergence_refines_on_computations)

    def test_unknown_attribute_raises(self):
        import repro.core as core

        with pytest.raises(AttributeError, match="no attribute"):
            core.definitely_not_a_thing

    def test_dir_lists_lazy_names(self):
        import repro.core as core

        listing = dir(core)
        assert "check_stabilization" in listing
        assert "graybox_instance" in listing

    def test_import_order_independence(self):
        """Importing checker first must not break core, and vice versa
        (the historical circular-import hazard)."""
        saved = {
            name: module
            for name, module in sys.modules.items()
            if name.startswith("repro")
        }
        try:
            for name in list(sys.modules):
                if name.startswith("repro"):
                    del sys.modules[name]
            checker = importlib.import_module("repro.checker")
            core = importlib.import_module("repro.core")
            assert callable(core.check_stabilization)
            assert callable(checker.check_stabilization)
        finally:
            sys.modules.update(saved)
