"""Unit tests for the atomicity-refinement pass."""

import pytest

from repro.core.abstraction import AbstractionFunction
from repro.core.errors import GCLError
from repro.checker import (
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
)
from repro.gcl.parser import parse_program
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state
from repro.transform import latch_name, pc_name, sequentialize, sequentialize_action

HEAL = """
program heal
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""

SWAP = """
program swap
var a, b : mod 2
action swap :: a != b --> a := b, b := a
init a == 0 && b == 0
"""


def projection(compiled_system, original_system, names):
    """Abstraction dropping the compiler-introduced registers."""
    cs = compiled_system.schema

    def mapping(state):
        env = cs.unpack(state)
        return original_system.schema.pack({name: env[name] for name in names})

    return AbstractionFunction(
        cs, original_system.schema, mapping, name="drop-registers"
    )


class TestPassStructure:
    def test_introduces_pc_and_latches(self):
        program = parse_program(HEAL)
        compiled = sequentialize_action(program, "heal")
        names = {variable.name for variable in compiled.variables}
        assert pc_name("heal") in names
        assert latch_name("heal", "x") in names

    def test_fetch_exec_pair_replaces_the_action(self):
        compiled = sequentialize_action(parse_program(HEAL), "heal")
        names = [action.name for action in compiled.actions]
        assert names == ["heal.fetch", "heal.exec"]

    def test_unknown_action_rejected(self):
        with pytest.raises(GCLError):
            sequentialize_action(parse_program(HEAL), "nope")

    def test_initial_states_extended_with_quiescent_registers(self):
        compiled = sequentialize_action(parse_program(HEAL), "heal")
        (initial,) = list(compiled.initial_states())
        env = compiled.env_of(initial)
        assert env[pc_name("heal")] == 0

    def test_multi_assignment_latches_every_target(self):
        compiled = sequentialize_action(parse_program(SWAP), "swap")
        names = {variable.name for variable in compiled.variables}
        assert latch_name("swap", "a") in names
        assert latch_name("swap", "b") in names

    def test_sequentialize_all_actions(self):
        program = parse_program(SWAP)
        compiled = sequentialize(program)
        assert len(compiled.actions) == 2 * len(program.actions)


class TestSemanticsWithoutFaults:
    def test_compiled_heal_init_refines_original(self):
        program = parse_program(HEAL)
        original = program.compile()
        compiled = sequentialize(program).compile()
        alpha = projection(compiled, original, ["x"])
        result = check_init_refinement(
            compiled, original, alpha, stutter_insensitive=True
        )
        assert result.holds, result.format()

    def test_compiled_swap_preserves_the_parallel_semantics(self):
        """The latches capture pre-state values, so the compiled swap
        still swaps (sequential naive compilation would not)."""
        program = parse_program(SWAP)
        compiled = sequentialize(program)
        env = {"a": 0, "b": 1,
               pc_name("swap"): 0,
               latch_name("swap", "a"): 0, latch_name("swap", "b"): 0}
        fetch = {a.name: a for a in compiled.actions}["swap.fetch"]
        execute = {a.name: a for a in compiled.actions}["swap.exec"]
        after = execute.execute(fetch.execute(env))
        assert (after["a"], after["b"]) == (1, 0)


class TestToleranceBehaviour:
    def test_compiled_heal_is_still_stabilizing(self):
        """The constant-write case survives the pass (stale executes
        are harmless no-ops)."""
        program = parse_program(HEAL)
        original = program.compile()
        compiled = sequentialize(program).compile()
        alpha = projection(compiled, original, ["x"])
        result = check_stabilization(
            compiled, original, alpha, stutter_insensitive=True
        )
        assert result.holds, result.result.format()

    def test_sequentialized_bottom_breaks_dijkstra3(self):
        """The reproduction's compiler finding: making ONE action of
        Dijkstra's 3-state ring non-atomic destroys stabilization,
        even under strong fairness — a stale latched write keeps
        re-injecting tokens along a divergent cycle."""
        n = 3
        compiled = sequentialize_action(
            dijkstra_three_state(n), "bottom"
        ).compile()
        btr = btr_program(n).compile()
        base_alpha = btr3_abstraction(n)
        cs = compiled.schema

        def mapping(state):
            env = cs.unpack(state)
            return base_alpha(tuple(env[f"c.{j}"] for j in range(n)))

        alpha = AbstractionFunction(cs, btr.schema, mapping, name="alpha-seq")
        for fairness in ("none", "strong"):
            result = check_stabilization(
                compiled, btr, alpha, stutter_insensitive=True,
                fairness=fairness, compute_steps=False,
            )
            assert not result.holds, fairness

    def test_synthesized_wrapper_repairs_the_compiled_ring(self):
        """...and the synthesis tool restores stabilization — the whole
        paper in one test: refinement broke tolerance, a wrapper
        (here: synthesized) gives it back."""
        from repro.synthesis import synthesize_wrapper

        n = 3
        compiled = sequentialize_action(
            dijkstra_three_state(n), "bottom"
        ).compile()
        btr = btr_program(n).compile()
        base_alpha = btr3_abstraction(n)
        cs = compiled.schema

        def mapping(state):
            env = cs.unpack(state)
            return base_alpha(tuple(env[f"c.{j}"] for j in range(n)))

        alpha = AbstractionFunction(cs, btr.schema, mapping, name="alpha-seq")
        result = synthesize_wrapper(
            compiled, btr, alpha, stutter_insensitive=True
        )
        assert result.holds, result.verification.format()
