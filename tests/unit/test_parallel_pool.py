"""Unit tests for the worker-pool substrate of :mod:`repro.parallel`.

The invariants under test: state hashing is stable across processes
and runs (so shard routing is deterministic), chunking is contiguous
and order-preserving (so first-violation witnesses are recoverable),
and worker-count resolution degrades to sequential exactly where
fork-based pools cannot run.
"""

from __future__ import annotations

import pytest

from repro.parallel import shard_of, stable_state_hash
from repro.parallel.pool import (
    WorkerPool,
    contiguous_chunks,
    parallel_available,
    resolve_workers,
    shard_batches,
)


def make_states(count):
    """States are plain value tuples (see ``repro.core.state.State``)."""
    return [(value,) for value in range(count)]


class TestStableHash:
    def test_equal_states_hash_equal(self):
        states = make_states(5)
        assert stable_state_hash(states[3]) == stable_state_hash((3,))

    def test_hash_does_not_depend_on_process_seed(self):
        """Python's str hash is randomized per process; ours must not be
        (shard routing has to agree between driver and workers)."""
        import subprocess
        import sys

        script = (
            "from repro.parallel import stable_state_hash\n"
            "print(stable_state_hash((3,)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        )
        assert int(out.stdout.strip()) == stable_state_hash((3,))

    def test_shard_of_is_in_range_and_deterministic(self):
        states = make_states(7)
        for state in states:
            shard = shard_of(state, 4)
            assert 0 <= shard < 4
            assert shard == shard_of(state, 4)

    def test_shard_of_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            shard_of((0,), 0)


class TestChunking:
    def test_contiguous_chunks_preserve_order(self):
        items = list(range(17))
        chunks = contiguous_chunks(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= 4 + 1

    def test_contiguous_chunks_empty(self):
        assert contiguous_chunks([], 3) == []

    def test_contiguous_chunks_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            contiguous_chunks([1], 0)

    def test_shard_batches_partition_and_route_stably(self):
        states = make_states(9)
        batches = shard_batches(states, 3)
        flattened = [state for batch in batches for state in batch]
        assert sorted(flattened, key=repr) == sorted(states, key=repr)
        # Same states, different arrival order: same routing.
        again = shard_batches(list(reversed(states)), 3)
        assert sorted(map(frozenset, batches), key=repr) == sorted(
            map(frozenset, again), key=repr
        )

    def test_shard_batches_drop_empty_shards(self):
        batches = shard_batches(make_states(1), 8)
        assert len(batches) == 1


class TestResolveWorkers:
    def test_one_stays_one(self):
        assert resolve_workers(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_passthrough_where_fork_exists(self):
        if parallel_available():
            assert resolve_workers(3) == 3
        else:
            assert resolve_workers(3) == 1

    def test_daemonic_processes_degrade_to_sequential(self, monkeypatch):
        """A pool worker may not fork a nested pool; inside one the
        request must quietly degrade to the sequential path."""
        import multiprocessing

        class FakeProcess:
            daemon = True

        monkeypatch.setattr(
            multiprocessing, "current_process", lambda: FakeProcess()
        )
        assert resolve_workers(4) == 1


@pytest.mark.skipif(not parallel_available(), reason="no fork start method")
class TestWorkerPool:
    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_map_runs_tasks_and_restores_context(self):
        from repro.parallel.pool import worker_context

        worker_context()["sentinel"] = "outer"
        with WorkerPool(2, offset=10) as pool:
            results = pool.map(_add_context_offset, [1, 2, 3])
        assert results == [11, 12, 13]
        assert worker_context().get("sentinel") == "outer"
        worker_context().clear()

    def test_map_outside_context_raises(self):
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError):
            pool.map(_add_context_offset, [1])

    def test_closures_ride_into_workers_via_fork(self):
        """The whole point of the fork-based design: an unpicklable
        closure in the context is usable by worker tasks."""
        secret = {"delta": 5}
        with WorkerPool(2, fn=lambda x: x + secret["delta"]) as pool:
            assert pool.map(_apply_context_fn, [1, 2]) == [6, 7]


def _add_context_offset(value):
    from repro.parallel.pool import worker_context

    return value + worker_context()["offset"]


def _apply_context_fn(value):
    from repro.parallel.pool import worker_context

    return worker_context()["fn"](value)
