"""Unit tests for the packaged simulation experiments."""

import math
import random

import pytest

from repro.rings.btr3 import dijkstra_three_state
from repro.simulation.experiments import (
    PROTOCOLS,
    convergence_curve,
    convergence_trial,
)


class TestProtocolTable:
    def test_contains_all_four_derived_systems(self):
        assert len(PROTOCOLS) == 4
        for name, (builder, kind) in PROTOCOLS.items():
            program = builder(5)
            assert program.actions, name
            assert kind in ("btr", "four", "three", "kstate")


class TestConvergenceTrial:
    def test_converges_with_generous_budget(self):
        rng = random.Random(3)
        steps = convergence_trial(
            dijkstra_three_state(8), "three", 8, rng, max_steps=20000
        )
        assert steps is not None and steps >= 0

    def test_returns_none_on_tiny_budget(self):
        # budget 0 forces failure unless the random state is already
        # legitimate; draw until we hit an illegitimate start.
        for seed in range(50):
            rng = random.Random(seed)
            steps = convergence_trial(
                dijkstra_three_state(8), "three", 8, rng, max_steps=0
            )
            if steps is None:
                return
        pytest.fail("every random state was already legitimate?!")

    def test_deterministic_given_seed(self):
        results = {
            convergence_trial(
                dijkstra_three_state(6), "three", 6, random.Random(11), 5000
            )
            for _ in range(3)
        }
        assert len(results) == 1


class TestConvergenceCurve:
    def test_rows_cover_the_grid(self):
        rows = convergence_curve(sizes=(5, 8), trials=3, seed=1)
        assert len(rows) == len(PROTOCOLS) * 2
        assert {row["n"] for row in rows} == {5, 8}

    def test_statistics_present_when_converged(self):
        rows = convergence_curve(sizes=(6,), trials=3, seed=2)
        for row in rows:
            assert row["unconverged"] == 0
            assert not math.isnan(row["mean"])
            assert row["count"] == 3

    def test_protocol_override(self):
        rows = convergence_curve(
            sizes=(5,),
            trials=2,
            protocols={"d3": (dijkstra_three_state, "three")},
        )
        assert len(rows) == 1
        assert rows[0]["protocol"] == "d3"
