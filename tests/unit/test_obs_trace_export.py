"""Span-tree construction and the trace/Prometheus exporters."""

import json
import re

from repro.obs import (
    Recorder,
    SpanNode,
    chrome_trace,
    metric_name,
    prometheus_text,
    render_span_tree,
)
from repro.obs.trace import rebase_nodes

#: The grammar the CI smoke enforces on every Prometheus sample line.
PROM_LINE = re.compile(r"^[a-z_]+(\{.*\})? [0-9.eE+-]+$")


class FakeClock:
    def __init__(self, tick: float = 1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


def _nested_recorder() -> Recorder:
    recorder = Recorder(kind="check", clock=FakeClock(), wall=lambda: 100.0)
    with recorder.span("outer", engine="packed"):
        with recorder.span("inner.a"):
            pass
        with recorder.span("inner.b", batch=3):
            pass
    return recorder


class TestSpanTree:
    def test_nesting_records_parent_links(self):
        record = _nested_recorder().record()
        names = [node.name for node in record.tree]
        assert names == ["outer", "inner.a", "inner.b"]
        parents = [node.parent for node in record.tree]
        assert parents == [-1, 0, 0]
        assert record.tree[0].attrs == {"engine": "packed"}
        assert record.tree[2].attrs == {"batch": 3}

    def test_deterministic_timing_with_fake_clock(self):
        record = _nested_recorder().record()
        outer, inner_a, inner_b = record.tree
        # FakeClock ticks once per reading; the recorder reads exactly
        # twice per span (enter + exit), so inner spans last one tick
        # and the outer span covers everything in between.
        assert inner_a.seconds == 1.0
        assert inner_b.seconds == 1.0
        assert outer.seconds == 5.0
        assert inner_a.start > outer.start
        assert inner_b.start > inner_a.start

    def test_parent_precedes_child(self):
        record = _nested_recorder().record()
        for index, node in enumerate(record.tree):
            assert node.parent < index

    def test_rebase_shifts_times_and_parents(self):
        nodes = [
            SpanNode("a", 0.0, 2.0, -1, {}),
            SpanNode("b", 0.5, 1.0, 0, {}),
        ]
        rebased = rebase_nodes(nodes, offset=10.0, parent_shift=5)
        assert [node.start for node in rebased] == [10.0, 10.5]
        # Roots stay roots; child links shift with their parents.
        assert [node.parent for node in rebased] == [-1, 5]
        # The originals are untouched.
        assert nodes[0].start == 0.0 and nodes[1].parent == 0

    def test_render_span_tree_indents_children(self):
        record = _nested_recorder().record()
        text = render_span_tree(record.tree)
        lines = text.splitlines()
        assert "outer" in text
        assert any(
            line.startswith("  ") and "inner.a" in line for line in lines
        )


class TestChromeTrace:
    def test_export_is_valid_trace_event_json(self):
        recorder = _nested_recorder()
        recorder.event("check.verdict", holds=True)
        payload = json.loads(chrome_trace([recorder.record()]))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "outer",
            "inner.a",
            "inner.b",
        }
        for event in complete:
            assert event["dur"] >= 0
            assert event["pid"] == 0

    def test_records_get_distinct_pids(self):
        records = [_nested_recorder().record() for _ in range(2)]
        payload = json.loads(chrome_trace(records))
        pids = {event["pid"] for event in payload["traceEvents"]}
        assert pids == {0, 1}

    def test_timestamps_rebase_onto_earliest_wall_base(self):
        early = _nested_recorder().record()
        late = _nested_recorder().record()
        late.wall_base = early.wall_base + 2.0
        payload = json.loads(chrome_trace([late, early]))
        by_pid = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "X" and event["name"] == "outer":
                by_pid[event["pid"]] = event["ts"]
        # `late` was passed first (pid 0) but starts 2s = 2e6us later.
        assert by_pid[0] - by_pid[1] == 2e6


class TestPrometheusText:
    def test_metric_name_sanitizes(self):
        assert metric_name("check.states.enumerated") == (
            "repro_check_states_enumerated"
        )
        assert metric_name("proc.rss.kib") == "repro_proc_rss_kib"
        assert metric_name("Weird-Name.2x") == "repro_weird_name__x"

    def test_every_sample_line_matches_the_grammar(self):
        recorder = _nested_recorder()
        recorder.count("check.states.enumerated", 64)
        recorder.gauge("proc.rss.kib", 4096)
        recorder.observe("check.round.evicted", 3)
        text = prometheus_text([recorder.record()])
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert PROM_LINE.match(line), line

    def test_histogram_exposition_shape(self):
        recorder = Recorder(clock=FakeClock())
        for value in (1, 1, 3):
            recorder.observe("rounds", value)
        text = prometheus_text([recorder.record()])
        assert '# TYPE repro_rounds histogram' in text
        assert 'repro_rounds_bucket{le="1"} 2' in text
        assert 'repro_rounds_bucket{le="+Inf"} 3' in text
        assert "repro_rounds_sum 5" in text
        assert "repro_rounds_count 3" in text

    def test_multiple_records_merge_to_totals(self):
        a = Recorder(clock=FakeClock())
        a.count("c", 1)
        b = Recorder(clock=FakeClock())
        b.count("c", 2)
        text = prometheus_text([a.record(), b.record()])
        assert "repro_c 3" in text

    def test_empty_input(self):
        assert prometheus_text([]) == ""
