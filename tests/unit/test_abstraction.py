"""Unit tests for repro.core.abstraction."""

import pytest

from repro.core.abstraction import AbstractionFunction, identity_abstraction
from repro.core.errors import AbstractionError
from repro.core.state import StateSchema
from repro.core.system import System


@pytest.fixture
def concrete_schema():
    return StateSchema({"hi": (0, 1), "lo": (0, 1)})


@pytest.fixture
def abstract_schema():
    return StateSchema({"v": (0, 1, 2, 3)})


@pytest.fixture
def alpha(concrete_schema, abstract_schema):
    """(hi, lo) |-> 2*hi + lo : a total bijection onto 0..3."""
    return AbstractionFunction(
        concrete_schema,
        abstract_schema,
        lambda state: (2 * state[0] + state[1],),
        name="binary",
    )


class TestApplication:
    def test_maps_states(self, alpha):
        assert alpha((1, 0)) == (2,)
        assert alpha((1, 1)) == (3,)

    def test_rejects_non_concrete_input(self, alpha):
        with pytest.raises(AbstractionError):
            alpha((5, 0))

    def test_rejects_bad_image(self, concrete_schema, abstract_schema):
        broken = AbstractionFunction(
            concrete_schema, abstract_schema, lambda state: (99,)
        )
        with pytest.raises(AbstractionError):
            broken((0, 0))

    def test_memoization_returns_same_object(self, alpha):
        assert alpha((0, 1)) is alpha((0, 1))

    def test_map_sequence(self, alpha):
        assert alpha.map_sequence([(0, 0), (0, 1)]) == ((0,), (1,))

    def test_image_of_states(self, alpha):
        assert alpha.image_of_states([(0, 0), (1, 1)]) == frozenset({(0,), (3,)})


class TestTotalityAndOnto:
    def test_bijection_is_total_and_onto(self, alpha):
        assert alpha.check_total()
        assert alpha.check_onto()
        assert alpha.missed_abstract_states() == frozenset()

    def test_non_onto_reports_missed(self, concrete_schema, abstract_schema):
        collapse = AbstractionFunction(
            concrete_schema, abstract_schema, lambda state: (0,)
        )
        assert collapse.check_total()
        assert not collapse.check_onto()
        assert collapse.missed_abstract_states() == frozenset({(1,), (2,), (3,)})

    def test_preimage(self, alpha, concrete_schema, abstract_schema):
        assert alpha.preimage((3,)) == frozenset({(1, 1)})
        collapse = AbstractionFunction(
            concrete_schema, abstract_schema, lambda state: (0,)
        )
        assert len(collapse.preimage((0,))) == 4


class TestImageSystem:
    def test_transitions_map_pointwise(self, alpha, concrete_schema):
        concrete = System(
            concrete_schema,
            [((0, 0), (0, 1)), ((0, 1), (1, 0))],
            initial=[(0, 0)],
        )
        image = alpha.image_system(concrete)
        assert image.has_transition((0,), (1,))
        assert image.has_transition((1,), (2,))
        assert image.initial == frozenset({(0,)})

    def test_collapsed_transitions_become_self_loops(
        self, concrete_schema, abstract_schema
    ):
        collapse = AbstractionFunction(
            concrete_schema, abstract_schema, lambda state: (0,)
        )
        concrete = System(concrete_schema, [((0, 0), (0, 1))], initial=[])
        image = collapse.image_system(concrete)
        assert image.has_transition((0,), (0,))


class TestIdentity:
    def test_identity_maps_to_itself(self, abstract_schema):
        ident = identity_abstraction(abstract_schema)
        assert ident((2,)) == (2,)
        assert ident.check_total()
        assert ident.check_onto()
