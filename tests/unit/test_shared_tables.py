"""The bounded shm table pool: verified hits, scan resistance, pid guard.

The pool's contract is that a hit reconstructs *exactly* what the
streamed evaluator would have produced — byte-identity of verdicts
must never rest on a hash — while resident bytes stay under the cap
and forked workers neither admit entries nor skew the driver's
counters.  Admission is ghost-gated: a chunk is packed only once its
digest has missed before (one-shot scans stream through for free), a
full pool freezes rather than rotates, and eviction touches only
never-hit entries for provably recurring candidates.
"""

from __future__ import annotations

import pytest

from repro.kernel.vector import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the shared engine needs NumPy"
)


@pytest.fixture
def registry():
    from repro.kernel.shared import SegmentRegistry

    registry = SegmentRegistry()
    yield registry
    registry.sweep()


def _tables_for(codes, actions=2):
    """Synthetic (mask, succ) tables with per-action structure."""
    import numpy as np

    out = []
    for index in range(actions):
        mask = (codes % (index + 2)) == 0
        succ = np.where(mask, codes + index + 1, codes)
        out.append((mask, succ.astype(np.int64)))
    return out


class TestTablePool:
    def test_miss_then_verified_hit_reconstructs_identically(self, registry):
        import numpy as np

        from repro.kernel.shared import TablePool
        from repro.obs import Recorder

        recorder = Recorder()
        pool = TablePool(
            registry, 1 << 20, np.dtype(np.int16), instrumentation=recorder
        )
        codes = np.arange(100, 200, dtype=np.int64)
        fresh = _tables_for(codes)
        assert pool.get(codes) is None  # first miss: ghost only
        first_walk = list(pool.filling(codes, iter(fresh)))
        assert len(first_walk) == len(fresh)
        assert len(pool) == 0  # one-shot chunks are not admitted
        assert pool.get(codes) is None  # second miss: now admittable
        consumed = list(pool.filling(codes, iter(fresh)))
        assert len(consumed) == len(fresh)
        cached = pool.get(codes)
        assert cached is not None
        for (mask_a, succ_a), (mask_b, succ_b) in zip(fresh, cached):
            assert mask_a.tolist() == mask_b.tolist()
            assert succ_a.tolist() == succ_b.tolist()
            assert succ_b.dtype == np.dtype(np.int64)
        counters = recorder.record().counters
        assert counters["kernel.tables.misses"] == 2
        assert counters["kernel.tables.hits"] == 1
        pool.close()

    def test_full_pool_evicts_only_never_hit_entries(self, registry):
        """A full pool freezes against a scan: room is made only for a
        thrice-missed candidate, only from zero-hit residents (LRU
        first), and a resident that has served a hit is protected."""
        import numpy as np

        from repro.kernel.shared import TablePool
        from repro.obs import Recorder

        recorder = Recorder()
        pool = TablePool(
            registry, 1 << 16, np.dtype(np.int64), instrumentation=recorder
        )
        chunks = [
            np.arange(start, start + 512, dtype=np.int64)
            for start in range(0, 512 * 7, 512)
        ]
        for codes in chunks[:5]:  # five entries fill the 64K cap
            pool.get(codes), pool.get(codes)
            list(pool.filling(codes, iter(_tables_for(codes))))
            assert pool.resident_bytes <= pool._cap
        assert len(pool) == 5
        assert pool.get(chunks[1]) is not None  # chunk 1 is now hot
        # A twice-missed candidate must NOT rotate the full pool...
        pool.get(chunks[5]), pool.get(chunks[5])
        list(pool.filling(chunks[5], iter(_tables_for(chunks[5]))))
        assert pool.get(chunks[5]) is None
        # ...but its third miss (just counted) proves recurrence, and
        # the oldest never-hit entry makes way.
        list(pool.filling(chunks[5], iter(_tables_for(chunks[5]))))
        assert pool.resident_bytes <= pool._cap
        counters = recorder.record().counters
        assert counters.get("kernel.tables.evictions", 0) >= 1
        assert pool.get(chunks[0]) is None  # LRU zero-hit victim
        assert pool.get(chunks[1]) is not None  # the hot entry survived
        assert pool.get(chunks[5]) is not None
        pool.close()

    def test_all_protected_pool_decays_hits_instead_of_evicting(
        self, registry
    ):
        """When every resident has served a hit, a recurring candidate
        decays their protection rather than evicting; repeated demand
        eventually turns stale entries evictable."""
        import numpy as np

        from repro.kernel.shared import TablePool
        from repro.obs import Recorder

        recorder = Recorder()
        pool = TablePool(
            registry, 1 << 16, np.dtype(np.int64), instrumentation=recorder
        )
        chunks = [
            np.arange(start, start + 512, dtype=np.int64)
            for start in range(0, 512 * 6, 512)
        ]
        for codes in chunks[:5]:
            pool.get(codes), pool.get(codes)
            list(pool.filling(codes, iter(_tables_for(codes))))
            assert pool.get(codes) is not None  # every resident is hot
        candidate = chunks[5]
        for _ in range(3):
            pool.get(candidate)
        # First attempt: all residents protected -> decay, no eviction.
        list(pool.filling(candidate, iter(_tables_for(candidate))))
        assert pool.get(candidate) is None
        assert (
            recorder.record().counters.get("kernel.tables.evictions", 0)
            == 0
        )
        # The decay made hits 0; the next recurrence gets room.
        list(pool.filling(candidate, iter(_tables_for(candidate))))
        assert pool.get(candidate) is not None
        assert (
            recorder.record().counters.get("kernel.tables.evictions", 0)
            >= 1
        )
        pool.close()

    def test_oversized_entries_are_not_admitted(self, registry):
        import numpy as np

        from repro.kernel.shared import TablePool

        pool = TablePool(registry, 1 << 16, np.dtype(np.int64))
        codes = np.arange(100_000, dtype=np.int64)
        pool.get(codes), pool.get(codes)  # recurring, but too big
        list(pool.filling(codes, iter(_tables_for(codes))))
        assert len(pool) == 0
        assert pool.get(codes) is None
        pool.close()

    def test_digest_collision_degrades_to_miss(self, registry):
        import numpy as np

        from repro.kernel.shared import TablePool

        pool = TablePool(registry, 1 << 20, np.dtype(np.int64))
        pool._key = lambda stored: b"same-key"  # force a collision
        first = np.arange(0, 64, dtype=np.int64)
        second = np.arange(64, 128, dtype=np.int64)
        pool.get(first), pool.get(first)  # ghost-prime admission
        list(pool.filling(first, iter(_tables_for(first))))
        # Same key, different codes: verification must reject the hit.
        assert pool.get(second) is None
        hit = pool.get(first)
        assert hit is not None
        assert hit[0][1].tolist() == _tables_for(first)[0][1].tolist()
        pool.close()

    def test_forked_pid_neither_admits_nor_counts(self, registry):
        import numpy as np

        from repro.kernel.shared import TablePool
        from repro.obs import Recorder

        recorder = Recorder()
        pool = TablePool(
            registry, 1 << 20, np.dtype(np.int64), instrumentation=recorder
        )
        driver_codes = np.arange(32, dtype=np.int64)
        worker_codes = np.arange(100, 132, dtype=np.int64)
        # Three driver-side misses: one for the worker chunk, two to
        # ghost-prime the driver chunk for admission.
        assert pool.get(worker_codes) is None
        pool.get(driver_codes), pool.get(driver_codes)
        list(pool.filling(driver_codes, iter(_tables_for(driver_codes))))
        pool._pid = pool._pid + 1  # simulate a forked worker
        list(pool.filling(worker_codes, iter(_tables_for(worker_codes))))
        assert len(pool) == 1  # the worker admission was refused
        assert pool.get(driver_codes) is not None  # reads still work
        assert pool.get(worker_codes) is None  # uncounted worker miss
        counters = recorder.record().counters
        assert counters.get("kernel.tables.hits", 0) == 0
        assert counters["kernel.tables.misses"] == 3

    def test_close_is_idempotent_and_releases_segments(self, registry):
        import numpy as np

        from repro.kernel.shared import TablePool

        pool = TablePool(registry, 1 << 20, np.dtype(np.int64))
        codes = np.arange(64, dtype=np.int64)
        pool.get(codes), pool.get(codes)
        list(pool.filling(codes, iter(_tables_for(codes))))
        assert len(pool) == 1
        pool.close()
        pool.close()
        assert len(pool) == 0
        assert pool.resident_bytes == 0
        assert pool.get(codes) is None


class TestKernelIntegration:
    def test_iter_actions_hits_on_the_third_walk(self):
        """Walk one: ghost miss, streamed for free.  Walk two: second
        miss admits.  Walk three: a verified hit — all three walks
        value-identical."""
        import numpy as np

        from repro.kernel.shared import (
            SegmentRegistry,
            SharedKernel,
            TablePool,
        )
        from repro.obs import Recorder
        from repro.rings import kstate_program

        kernel = SharedKernel(kstate_program(3, 3))
        registry = SegmentRegistry()
        recorder = Recorder()
        pool = TablePool(
            registry, 1 << 22, np.dtype(np.int16), instrumentation=recorder
        )
        try:
            kernel.attach_tables(pool)
            codes = np.arange(kernel.size, dtype=np.int64)
            walks = [
                [
                    (mask.copy(), succ.copy())
                    for mask, succ in kernel.iter_actions(codes)
                ]
                for _ in range(3)
            ]
            for later in walks[1:]:
                for (mask_a, succ_a), (mask_b, succ_b) in zip(
                    walks[0], later
                ):
                    assert mask_a.tolist() == mask_b.tolist()
                    assert succ_a.tolist() == succ_b.tolist()
            counters = recorder.record().counters
            assert counters["kernel.tables.hits"] >= 1
            assert counters["kernel.tables.misses"] >= 2
        finally:
            kernel.attach_tables(None)
            pool.close()
            registry.sweep()

    def test_succ_pairs_identical_with_and_without_pool(self):
        import numpy as np

        from repro.kernel.shared import (
            SegmentRegistry,
            SharedKernel,
            TablePool,
        )
        from repro.rings import kstate_program

        program = kstate_program(3, 4)
        bare = SharedKernel(program)
        codes = np.arange(bare.size, dtype=np.int64)
        expected = bare.succ_pairs(codes)
        pooled = SharedKernel(program)
        registry = SegmentRegistry()
        pool = TablePool(registry, 1 << 22, np.dtype(np.int16))
        try:
            pooled.attach_tables(pool)
            pooled.succ_pairs(codes)  # ghost miss
            pooled.succ_pairs(codes)  # second miss admits
            origins, targets = pooled.succ_pairs(codes)  # served from it
            assert origins.tolist() == expected[0].tolist()
            assert targets.tolist() == expected[1].tolist()
        finally:
            pooled.attach_tables(None)
            pool.close()
            registry.sweep()
