"""Unit tests for typed simulation outcomes and deadline support.

Every run ends in exactly one :class:`SimStatus`; the tests below pin
one deterministic run per status, plus the determinism contract the
campaign engine relies on: identical seeds yield byte-identical
traces.
"""

from __future__ import annotations

import pytest

from repro.gcl.parser import parse_program
from repro.rings.btr3 import dijkstra_three_state
from repro.simulation.faults import CorruptEverything, FaultSchedule
from repro.simulation.metrics import legitimacy_predicate
from repro.simulation.runner import SimOutcome, SimStatus, execute, simulate

COUNTDOWN = """
program countdown
var x : 0..5
action dec :: x > 0 --> x := x - 1
init x == 5
"""

SPINNER = """
program spinner
var x : bool
action flip :: true --> x := !x
init x == false
"""


class TestSimStatus:
    def test_converged_when_stop_predicate_fires(self):
        outcome = execute(
            parse_program(COUNTDOWN), 100, seed=0,
            stop_when=lambda env: env["x"] == 2,
        )
        assert outcome.status is SimStatus.CONVERGED
        assert outcome.converged
        assert outcome.trace.final() == {"x": 2}
        assert outcome.steps == 3

    def test_exhausted_when_step_budget_runs_out(self):
        outcome = execute(parse_program(SPINNER), 4, seed=0)
        assert outcome.status is SimStatus.EXHAUSTED
        assert not outcome.converged
        assert outcome.steps == 4

    def test_deadlock_when_no_action_enabled(self):
        outcome = execute(parse_program(COUNTDOWN), 100, seed=0)
        assert outcome.status is SimStatus.DEADLOCK
        assert outcome.trace.final() == {"x": 0}
        assert outcome.steps == 5

    def test_timeout_when_deadline_elapses(self):
        outcome = execute(parse_program(SPINNER), 10**8, seed=0, deadline=1e-9)
        assert outcome.status is SimStatus.TIMEOUT
        assert not outcome.converged
        # The deadline tripped long before the step budget.
        assert outcome.steps < 10**8

    def test_outcome_records_seed_and_wall_time(self):
        outcome = execute(parse_program(COUNTDOWN), 10, seed=42)
        assert outcome.seed == 42
        assert outcome.wall_seconds >= 0.0
        assert isinstance(outcome, SimOutcome)

    def test_timeout_on_ring_with_faults(self):
        # The campaign configuration in miniature: a fault-injected
        # ring run whose deadline elapses is reported as TIMEOUT, not
        # as an error or a hang.
        program = dijkstra_three_state(4)
        outcome = execute(
            program, 10**8, seed=1, deadline=1e-9,
            faults=FaultSchedule([0], CorruptEverything()),
            stop_when=legitimacy_predicate("three", 4),
        )
        assert outcome.status is SimStatus.TIMEOUT


class TestDeterminism:
    def test_identical_seeds_give_byte_identical_traces(self):
        program = dijkstra_three_state(4)

        def run():
            return execute(
                program, 200, seed=99,
                faults=FaultSchedule([0, 5], CorruptEverything()),
                stop_when=legitimacy_predicate("three", 4),
            )

        first, second = run(), run()
        assert first.trace.to_jsonl() == second.trace.to_jsonl()
        assert first.status is second.status
        assert first.steps == second.steps

    def test_different_seeds_diverge(self):
        program = dijkstra_three_state(5)

        def run(seed):
            return execute(
                program, 200, seed=seed,
                faults=FaultSchedule([0], CorruptEverything()),
            ).trace.to_jsonl()

        # At least one of a handful of seeds must differ from seed 0
        # (all-equal would mean the seed is ignored).
        assert any(run(seed) != run(0) for seed in range(1, 5))

    def test_simulate_wrapper_matches_execute(self):
        program = parse_program(COUNTDOWN)
        assert (
            simulate(program, 10, seed=3).to_jsonl()
            == execute(program, 10, seed=3).trace.to_jsonl()
        )
