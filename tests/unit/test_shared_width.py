"""Adaptive code-width selection and the narrow storage plumbing.

The width module is the single source of truth for how many bytes a
stored code costs; everything else (frontier runs, spill files, bucket
pairs, staging segments) inherits its choice.  These tests pin the
promotion edges exactly — a space of ``2**15`` states still fits int16
because its max code is ``2**15 - 1`` — and check that the narrow
containers round-trip codes losslessly.
"""

from __future__ import annotations

import pytest

from repro.kernel.vector import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the shared engine needs NumPy"
)


class TestWidthSelection:
    def test_small_spaces_fit_int16(self):
        from repro.kernel.shared import code_dtype, code_width

        import numpy as np

        for size in (1, 2, 100, (1 << 15) - 1, 1 << 15):
            assert code_width(size) == 2
            assert code_dtype(size) == np.dtype(np.int16)

    def test_promotion_edge_to_int32_is_closed_on_the_narrow_side(self):
        from repro.kernel.shared import code_dtype, code_width

        import numpy as np

        assert code_width(1 << 15) == 2
        assert code_width((1 << 15) + 1) == 4
        assert code_dtype((1 << 15) + 1) == np.dtype(np.int32)

    def test_promotion_edge_to_int64(self):
        from repro.kernel.shared import code_dtype, code_width

        import numpy as np

        assert code_width(1 << 31) == 4
        assert code_width((1 << 31) + 1) == 8
        assert code_dtype((1 << 31) + 1) == np.dtype(np.int64)

    def test_max_code_of_each_width_fits_its_dtype(self):
        from repro.kernel.shared import code_dtype

        import numpy as np

        for size in (1 << 15, 1 << 31):
            dtype = code_dtype(size)
            info = np.iinfo(dtype)
            assert size - 1 <= info.max


class TestMergedBits:
    """The grouped reduceat set/clear versus a naive per-code loop."""

    def _naive_set(self, size, codes):
        import numpy as np

        out = np.zeros((size + 7) // 8, dtype=np.uint8)
        for code in codes:
            out[code >> 3] |= np.uint8(1 << (code & 7))
        return out

    def test_set_codes_matches_naive_on_sorted_input(self):
        import numpy as np

        from repro.kernel.shared import BitField

        size = 600
        codes = np.array([0, 1, 2, 7, 8, 63, 64, 65, 599], dtype=np.int64)
        field = BitField(size)
        field.set_codes(codes)
        assert field._bytes.tolist() == self._naive_set(size, codes).tolist()

    def test_set_codes_matches_naive_on_unsorted_duplicated_input(self):
        import numpy as np

        from repro.kernel.shared import BitField

        size = 256
        rng = np.random.default_rng(7)
        codes = rng.integers(0, size, size=400, dtype=np.int64)
        field = BitField(size)
        field.set_codes(codes)
        expected = self._naive_set(size, codes)
        assert field._bytes.tolist() == expected.tolist()

    def test_clear_codes_inverts_set_codes(self):
        import numpy as np

        from repro.kernel.shared import BitField

        size = 128
        field = BitField(size)
        everything = np.arange(size, dtype=np.int64)
        field.set_codes(everything)
        cleared = np.array([0, 3, 8, 15, 64, 127], dtype=np.int64)
        field.clear_codes(cleared)
        member = field.test(everything)
        assert sorted(np.flatnonzero(~member).tolist()) == cleared.tolist()

    def test_narrow_dtype_codes_address_the_same_bits(self):
        import numpy as np

        from repro.kernel.shared import BitField

        size = 1 << 12
        codes64 = np.array([5, 17, 4095], dtype=np.int64)
        codes16 = codes64.astype(np.int16)
        a, b = BitField(size), BitField(size)
        a.set_codes(codes64)
        b.set_codes(codes16)
        assert a._bytes.tolist() == b._bytes.tolist()
        assert b.test(codes16).all()


class TestNarrowCodeRuns:
    def test_runs_store_and_yield_the_requested_dtype(self, tmp_path):
        import numpy as np

        from repro.kernel.shared import CodeRuns, SpillStore

        with SpillStore(str(tmp_path)) as store:
            runs = CodeRuns(store, 1 << 20, dtype=np.int16)
            codes = np.array([1, 5, 900, 32000], dtype=np.int64)
            runs.append(codes)
            (out,) = list(runs.chunks())
            assert out.dtype == np.dtype(np.int16)
            assert out.tolist() == codes.tolist()

    def test_spilled_narrow_runs_round_trip(self, tmp_path):
        import numpy as np

        from repro.kernel.shared import CodeRuns, SpillStore

        with SpillStore(
            str(tmp_path), code_dtype=np.int16
        ) as store:
            runs = CodeRuns(store, 1, dtype=np.int16)  # cap floors at 64K
            original = np.arange(32000, dtype=np.int64)
            for _ in range(4):  # 4 x 64 KB of int16 forces spills
                runs.append(original)
            assert runs.spilled_runs >= 1
            chunks = list(runs.chunks())
            assert len(chunks) == 4
            for chunk in chunks:
                assert chunk.dtype == np.dtype(np.int16)
                assert chunk.tolist() == original.tolist()
            runs.clear()
