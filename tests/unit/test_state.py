"""Unit tests for repro.core.state."""

import pytest

from repro.core.errors import SchemaMismatchError, StateSpaceError
from repro.core.state import StateSchema, StateSpace


@pytest.fixture
def schema():
    return StateSchema({"x": (0, 1), "y": (0, 1, 2)})


class TestStateSchemaConstruction:
    def test_rejects_empty_variable_set(self):
        with pytest.raises(ValueError):
            StateSchema({})

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            StateSchema({"x": ()})

    def test_rejects_duplicate_domain_values(self):
        with pytest.raises(ValueError):
            StateSchema({"x": (1, 1)})

    def test_preserves_declaration_order(self, schema):
        assert schema.names == ("x", "y")

    def test_size_is_domain_product(self, schema):
        assert schema.size() == 6

    def test_len_counts_variables(self, schema):
        assert len(schema) == 2

    def test_contains_variable_names(self, schema):
        assert "x" in schema
        assert "z" not in schema


class TestPackUnpack:
    def test_pack_orders_by_schema(self, schema):
        assert schema.pack({"y": 2, "x": 1}) == (1, 2)

    def test_pack_rejects_missing_variable(self, schema):
        with pytest.raises(StateSpaceError):
            schema.pack({"x": 0})

    def test_pack_rejects_unknown_variable(self, schema):
        with pytest.raises(StateSpaceError):
            schema.pack({"x": 0, "y": 0, "z": 0})

    def test_pack_rejects_out_of_domain(self, schema):
        with pytest.raises(StateSpaceError):
            schema.pack({"x": 5, "y": 0})

    def test_unpack_inverts_pack(self, schema):
        assignment = {"x": 1, "y": 2}
        assert schema.unpack(schema.pack(assignment)) == assignment

    def test_value_reads_single_component(self, schema):
        assert schema.value((1, 2), "y") == 2

    def test_replace_updates_one_component(self, schema):
        assert schema.replace((0, 0), y=2) == (0, 2)

    def test_replace_rejects_out_of_domain(self, schema):
        with pytest.raises(StateSpaceError):
            schema.replace((0, 0), y=9)

    def test_replace_rejects_unknown_name(self, schema):
        with pytest.raises(StateSpaceError):
            schema.replace((0, 0), z=1)


class TestValidation:
    def test_validate_accepts_member(self, schema):
        schema.validate((1, 2))

    def test_validate_rejects_wrong_arity(self, schema):
        with pytest.raises(StateSpaceError):
            schema.validate((1,))

    def test_validate_rejects_non_tuple(self, schema):
        with pytest.raises(StateSpaceError):
            schema.validate([1, 2])

    def test_is_valid_boolean_form(self, schema):
        assert schema.is_valid((0, 0))
        assert not schema.is_valid((0, 9))


class TestEnumeration:
    def test_states_enumerates_full_space(self, schema):
        assert len(list(schema.states())) == 6

    def test_states_are_distinct(self, schema):
        states = list(schema.states())
        assert len(set(states)) == len(states)

    def test_every_enumerated_state_is_valid(self, schema):
        assert all(schema.is_valid(s) for s in schema.states())


class TestCompatibility:
    def test_equal_schemas_are_compatible(self, schema):
        other = StateSchema({"x": (0, 1), "y": (0, 1, 2)})
        assert schema.compatible_with(other)
        assert schema == other
        assert hash(schema) == hash(other)

    def test_different_domains_incompatible(self, schema):
        other = StateSchema({"x": (0, 1), "y": (0, 1)})
        assert not schema.compatible_with(other)

    def test_require_compatible_raises_with_context(self, schema):
        other = StateSchema({"z": (0, 1)})
        with pytest.raises(SchemaMismatchError, match="box test"):
            schema.require_compatible(other, "box test")

    def test_format_state_mentions_names(self, schema):
        assert schema.format_state((1, 2)) == "x=1 y=2"


class TestStateSpace:
    def test_len_matches_schema_size(self, schema):
        assert len(StateSpace(schema)) == 6

    def test_membership(self, schema):
        space = StateSpace(schema)
        assert (0, 2) in space
        assert (0, 9) not in space
        assert "nope" not in space

    def test_as_frozenset_is_cached_and_complete(self, schema):
        space = StateSpace(schema)
        first = space.as_frozenset()
        assert first is space.as_frozenset()
        assert len(first) == 6

    def test_sample_draws_valid_states(self, schema):
        import random

        space = StateSpace(schema)
        for state in space.sample(20, random.Random(1)):
            assert schema.is_valid(state)

    def test_sample_rejects_negative_count(self, schema):
        import random

        with pytest.raises(ValueError):
            StateSpace(schema).sample(-1, random.Random(1))

    def test_space_helper_on_schema(self, schema):
        assert isinstance(schema.space(), StateSpace)
