"""Unit tests for the 4-state derivation (paper, Section 4)."""

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_init_refinement,
    check_stabilization,
    compression_transitions,
)
from repro.gcl.process import check_model_compliance
from repro.rings.btr import btr_program
from repro.rings.btr4 import (
    btr4_program,
    btr4_variables,
    c1_program,
    dijkstra_four_state,
    four_state_initial,
)
from repro.rings.mappings import btr4_abstraction
from repro.rings.tokens import count_tokens, tokens_in_state
from repro.rings.topology import Ring


class TestStructure:
    def test_variable_layout(self):
        variables = btr4_variables(Ring(5))
        names = [v.name for v in variables]
        assert names == ["c.0", "c.1", "c.2", "c.3", "c.4", "up.1", "up.2", "up.3"]

    def test_canonical_initial_encodes_dt0(self):
        program = c1_program(4)
        schema = program.schema()
        alpha = btr4_abstraction(4)
        for state in program.initial_states():
            image = alpha(state)
            assert tokens_in_state(btr_program(4).schema(), image) == ("dt.0",)

    def test_c1_is_concrete_model_compliant(self):
        assert check_model_compliance(c1_program(4).processes) == []

    def test_dijkstra4_is_concrete_model_compliant(self):
        assert check_model_compliance(dijkstra_four_state(4).processes) == []

    def test_two_process_ring_builds(self):
        assert c1_program(2).compile().schema.size() == 4


class TestMappingProperties:
    """The paper's Section 4.1 vacuity observations, checked exhaustively."""

    @pytest.fixture
    def alpha(self):
        return btr4_abstraction(4)

    def test_total(self, alpha):
        assert alpha.check_total()

    def test_every_encoding_has_at_least_one_token(self, alpha):
        """W1' is vacuous: a token always exists in the 4-state encoding."""
        schema = btr_program(4).schema()
        assert all(
            count_tokens(schema, alpha(state)) >= 1
            for state in alpha.concrete_schema.states()
        )

    def test_no_encoding_colocates_opposite_tokens(self, alpha):
        """W2' is vacuous: ut.j && dt.j is unsatisfiable under the mapping."""
        schema = btr_program(4).schema()
        for state in alpha.concrete_schema.states():
            tokens = tokens_in_state(schema, alpha(state))
            positions = [flag.split(".")[1] for flag in tokens]
            assert len(set(positions)) == len(positions)

    def test_not_onto_full_btr_space(self, alpha):
        """Hence the mapping misses the zero-token and co-location states."""
        assert not alpha.check_onto()
        missed = alpha.missed_abstract_states()
        schema = btr_program(4).schema()
        from repro.rings.tokens import state_with_tokens

        assert state_with_tokens(schema, []) in missed


class TestBTR4Equivalence:
    def test_btr4_init_refines_btr(self):
        n = 4
        result = check_init_refinement(
            btr4_program(n).compile(), btr_program(n).compile(), btr4_abstraction(n)
        )
        assert result.holds, result.format()

    def test_btr4_legitimate_behaviour_covers_all_token_positions(self):
        n = 4
        alpha = btr4_abstraction(n)
        btr4 = btr4_program(n).compile()
        btr = btr_program(n).compile()
        image = alpha.image_of_states(btr4.reachable())
        assert image == btr.reachable()


class TestLemma7:
    """[C1 <= BTR] — the paper's first convergence-refinement claim."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_convergence_refinement(self, n):
        result = check_convergence_refinement(
            c1_program(n).compile(), btr_program(n).compile(), btr4_abstraction(n)
        )
        assert result.holds, result.format()

    def test_compressions_exist_and_never_gain_tokens(self):
        """The paper's proof sketch says compressions "only result in a
        token loss"; mechanically, count-*preserving* compressions also
        exist (a token flipping direction via a shortcut bounce), but
        no compression ever gains a token — and none lies on a cycle,
        which is what Lemma 7 actually needs (see EXPERIMENTS.md E06).
        """
        n = 4
        alpha = btr4_abstraction(n)
        btr = btr_program(n).compile()
        schema = btr.schema
        compressions = compression_transitions(
            c1_program(n).compile(), btr, alpha
        )
        assert compressions, "C1 genuinely compresses BTR computations"
        losing = 0
        for source, target in compressions:
            before = count_tokens(schema, alpha(source))
            after = count_tokens(schema, alpha(target))
            assert after <= before
            if after < before:
                losing += 1
        assert losing > 0, "token-losing compressions exist too"


class TestTheorem8:
    @pytest.mark.parametrize("n", [3, 4])
    def test_c1_stabilizes_to_btr_unfair(self, n):
        """Wrappers are vacuous, so C1 alone must stabilize — and it
        does so under the raw unfair central daemon."""
        result = check_stabilization(
            c1_program(n).compile(),
            btr_program(n).compile(),
            btr4_abstraction(n),
            fairness="none",
        )
        assert result.holds, result.format()

    @pytest.mark.parametrize("n", [3, 4])
    def test_dijkstra_four_state_stabilizes_unfair(self, n):
        result = check_stabilization(
            dijkstra_four_state(n).compile(),
            btr_program(n).compile(),
            btr4_abstraction(n),
            fairness="none",
        )
        assert result.holds, result.format()

    def test_dijkstra4_relaxation_adds_transitions(self):
        c1 = c1_program(4).compile()
        d4 = dijkstra_four_state(4).compile()
        c1_pairs = set(c1.transitions())
        d4_pairs = set(d4.transitions())
        assert c1_pairs < d4_pairs


class TestMappedW1Vacuity:
    def test_mapped_w1_guard_implies_token_already_present(self):
        """Paper, Section 4.1: 'the guard of W1' already implies that
        c.N != c.(N-1) && up.(N-1).  Thus W1' is vacuously
        implemented.'  Checked over the whole 4-state space: whenever
        the mapped guard (all interior direction bits up, top colours
        differing) holds, ut.N is already true in the image."""
        n = 4
        ring = Ring(n)
        top = ring.top
        alpha = btr4_abstraction(n)
        schema = alpha.concrete_schema
        abstract_schema = btr_program(n).schema()
        hit = 0
        for state in schema.states():
            env = schema.unpack(state)
            guard = all(env[Ring.up(j)] for j in ring.middles()) and (
                env[Ring.c(top - 1)] != env[Ring.c(top)]
            )
            if not guard:
                continue
            hit += 1
            image = alpha(state)
            assert abstract_schema.value(image, Ring.ut(top)) is True
        assert hit > 0, "the mapped guard should be satisfiable"
