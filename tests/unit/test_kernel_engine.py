"""Unit tests for the packed successor kernel and engine selection.

The contract: a kernel lowered straight from a program produces
exactly the successor codes the compiled transition table holds, under
every daemon and ``keep_stutter`` mode, raising the compiler's exact
errors; and the checkers' engine selection emits the ``engine.*``
counters, falls back with a reason where packing cannot apply, and
rejects unknown engines the way the CLI rejects a bad flag.
"""

from __future__ import annotations

import pytest

from repro.checker import check_convergence_refinement, check_stabilization
from repro.core.errors import GCLError
from repro.core.state import StateSchema
from repro.core.system import System
from repro.gcl.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.kernel import PackedKernel, as_kernel, packed_fallback_reason
from repro.obs import Recorder
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c3_composed,
    dijkstra_three_state,
    kstate_program,
)

DAEMONS = [
    ("central", lambda: CentralDaemon()),
    ("synchronous", lambda: SynchronousDaemon()),
    ("distributed-2", lambda: DistributedDaemon(max_concurrency=2)),
]

PROGRAMS = [
    ("btr", lambda: btr_program(3)),
    ("dijkstra3", lambda: dijkstra_three_state(3)),
    ("c3-composed", lambda: c3_composed(3)),
    ("kstate", lambda: kstate_program(3, 3)),
]


class TestSuccessorParity:
    @pytest.mark.parametrize(
        "pname,build", PROGRAMS, ids=[p[0] for p in PROGRAMS]
    )
    @pytest.mark.parametrize(
        "dname,daemon", DAEMONS, ids=[d[0] for d in DAEMONS]
    )
    @pytest.mark.parametrize("keep_stutter", [True, False])
    def test_kernel_matches_compiled_table(
        self, pname, build, dname, daemon, keep_stutter
    ):
        program = build()
        kernel = PackedKernel.from_program(
            program, daemon=daemon(), keep_stutter=keep_stutter
        )
        system = program.compile(daemon=daemon(), keep_stutter=keep_stutter)
        interner = kernel.interner
        assert kernel.name == system.name
        assert sorted(kernel.initial_codes) == sorted(
            interner.encode(state) for state in system.initial
        )
        for code, state in enumerate(system.schema.states()):
            expected = sorted(
                interner.encode(s) for s in system.successors(state)
            )
            assert list(kernel.successors(code)) == expected

    def test_from_system_round_trips(self):
        system = btr_program(3).compile()
        kernel = PackedKernel.from_system(system)
        for code, state in enumerate(system.schema.states()):
            assert [
                kernel.interner.decode(s) for s in kernel.successors(code)
            ] == sorted(system.successors(state))

    def test_materialize_equals_compile(self):
        """The kernel's materialized system is byte-identically the
        compiled one — witness construction depends on this."""
        program = dijkstra_three_state(3)
        kernel = PackedKernel.from_program(program)
        materialized = kernel.materialize()
        compiled = program.compile()
        assert materialized.name == compiled.name
        assert materialized.initial == compiled.initial
        assert set(materialized.transitions()) == set(compiled.transitions())

    def test_out_of_domain_move_raises_the_compilers_error(self):
        """A program whose action drives the state out of domain must
        raise through the kernel with the compiler's exact message."""
        from repro.gcl.action import GuardedAction
        from repro.gcl.domain import IntRange
        from repro.gcl.expr import Add, Const, Eq, Var
        from repro.gcl.program import Program
        from repro.gcl.variable import Variable

        bad = Program(
            "escaper",
            [Variable("x", IntRange(0, 2))],
            [GuardedAction("up", Eq(Var("x"), Const(2)), {"x": Add(Var("x"), Const(1))})],
            init=Eq(Var("x"), Const(0)),
        )
        with pytest.raises(GCLError) as compiled_err:
            bad.compile()
        kernel = PackedKernel.from_program(bad)
        code = kernel.interner.encode((2,))
        with pytest.raises(GCLError) as kernel_err:
            kernel.successors(code)
        assert str(kernel_err.value) == str(compiled_err.value)


class TestEngineSelection:
    def test_packed_counter_on_selection(self):
        recorder = Recorder()
        check_stabilization(
            btr_program(3), btr_program(3), engine="packed",
            instrumentation=recorder,
        )
        record = recorder.record()
        assert record.counters["engine.packed"] == 1
        assert "engine.fallback.tuple" not in record.counters

    def test_no_engine_counters_on_tuple(self):
        recorder = Recorder()
        check_stabilization(
            btr_program(3), btr_program(3), engine="tuple",
            instrumentation=recorder,
        )
        assert not any(
            name.startswith("engine.") for name in recorder.record().counters
        )

    def test_unpackable_schema_falls_back_with_reason(self):
        wide = StateSchema({f"x{i}": (0, 1) for i in range(23)})
        states = list(wide.states())[:2]
        system = System(wide, [(states[0], states[1])], initial=[states[0]])
        assert packed_fallback_reason(system) is not None
        recorder = Recorder()
        check_stabilization(
            system, system, engine="packed", instrumentation=recorder,
            state_budget=50,
        )
        record = recorder.record()
        assert record.counters["engine.fallback.tuple"] == 1
        events = [e for e in record.events if e.name == "engine.fallback"]
        assert events and events[0].fields["requested"] == "packed"

    def test_tight_budget_falls_back(self):
        recorder = Recorder()
        check_stabilization(
            dijkstra_three_state(3), btr_program(3), btr3_abstraction(3),
            engine="packed", state_budget=5, instrumentation=recorder,
        )
        record = recorder.record()
        assert record.counters["engine.fallback.tuple"] == 1
        reason = [
            e for e in record.events if e.name == "engine.fallback"
        ][0].fields["reason"]
        assert "budget" in reason

    @pytest.mark.parametrize("checkfn", [
        check_stabilization, check_convergence_refinement,
    ])
    def test_unknown_engine_rejected(self, checkfn):
        with pytest.raises(ValueError, match=r"unknown engine 'bogus'"):
            checkfn(btr_program(3), btr_program(3), engine="bogus")

    def test_campaign_config_rejects_unknown_engine(self):
        from repro.campaign import CampaignConfig
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError, match=r"unknown engine"):
            CampaignConfig(engine="bogus")

    def test_refinement_replay_emits_fallback(self):
        """A failing refinement under the packed engine replays on the
        tuple engine (for the witness) and says so."""
        recorder = Recorder()
        result = check_convergence_refinement(
            dijkstra_three_state(3), btr_program(3), btr3_abstraction(3),
            engine="packed", instrumentation=recorder,
        )
        assert not result.holds
        record = recorder.record()
        assert record.counters["engine.packed"] == 1
        assert record.counters["engine.fallback.tuple"] == 1


class TestAsKernel:
    def test_program_and_system_views_agree(self):
        program = kstate_program(3, 3)
        from_program = as_kernel(program)
        from_system = as_kernel(program.compile())
        assert from_program.size == from_system.size
        for code in range(from_program.size):
            assert from_program.successors(code) == from_system.successors(code)
