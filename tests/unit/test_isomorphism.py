"""Unit tests for repro.core.isomorphism (convergence isomorphism)."""

import pytest

from repro.core.isomorphism import (
    check_convergence_isomorphism,
    is_convergence_isomorphism,
)


class TestPaperExamples:
    def test_positive_example_from_section_2(self):
        # "c = s1 s3 s6 is a convergence isomorphism of a = s1..s6"
        assert is_convergence_isomorphism(
            "s1 s3 s6".split(), "s1 s2 s3 s4 s5 s6".split()
        )

    def test_negative_example_from_section_2(self):
        # "c = s1 s3 s5 s6 is not ... of a = s1 s2 s5 s6"
        assert not is_convergence_isomorphism(
            "s1 s3 s5 s6".split(), "s1 s2 s5 s6".split()
        )


class TestEndpointClauses:
    def test_equal_sequences(self):
        assert is_convergence_isomorphism("abc", "abc")

    def test_initial_state_must_match(self):
        verdict = check_convergence_isomorphism("bc", "abc")
        assert not verdict.holds
        assert "initial" in verdict.reason

    def test_final_state_must_match(self):
        verdict = check_convergence_isomorphism("ab", "abc")
        assert not verdict.holds
        assert "final" in verdict.reason

    def test_single_state_sequences(self):
        assert is_convergence_isomorphism("a", "a")
        assert not is_convergence_isomorphism("a", "b")

    def test_empty_sequences_rejected(self):
        assert not check_convergence_isomorphism([], []).holds


class TestSubsequenceClause:
    def test_insertions_rejected(self):
        verdict = check_convergence_isomorphism("axc", "abc")
        assert not verdict.holds
        assert "subsequence" in verdict.reason

    def test_omissions_counted(self):
        verdict = check_convergence_isomorphism("ad", "abcd")
        assert verdict.holds
        assert verdict.omissions == 2

    def test_embedding_is_returned(self):
        verdict = check_convergence_isomorphism("ad", "abcd")
        assert verdict.embedding is not None
        assert verdict.embedding[0] == 0
        assert verdict.embedding[-1] == 3

    def test_verdict_is_truthy(self):
        assert bool(check_convergence_isomorphism("abc", "abc"))
        assert not bool(check_convergence_isomorphism("cba", "abc"))


class TestStutterInsensitive:
    def test_stuttering_concrete_accepted_when_enabled(self):
        assert not is_convergence_isomorphism("aabbc", "abc")
        assert is_convergence_isomorphism("aabbc", "abc", stutter_insensitive=True)

    def test_stuttering_abstract_also_normalized(self):
        assert is_convergence_isomorphism("abc", "aabbcc", stutter_insensitive=True)

    def test_stutter_mode_still_checks_order(self):
        assert not is_convergence_isomorphism("ba", "aabb", stutter_insensitive=True)
