"""Unit tests for the structured observability layer (`repro.obs`)."""

import json

import pytest

from repro.checker import check_self_stabilization, check_stabilization
from repro.checker.refinement_check import check_convergence_refinement
from repro.gcl import parse_program
from repro.obs import (
    NULL_INSTRUMENTATION,
    EventRecord,
    Instrumentation,
    NullInstrumentation,
    Recorder,
    RunRecord,
    RunRecordError,
    SpanStats,
    load_jsonl,
    loads_jsonl,
    write_jsonl,
)
from repro.obs.report import summarize_record, summarize_text
from repro.rings import btr_program
from repro.simulation import (
    CorruptVariables,
    FaultSchedule,
    run_until,
    simulate,
)

SPIN = """
program spin
var x : mod 2
action flip0 :: x == 0 --> x := 1
action flip1 :: x == 1 --> x := 0
init x == 0
"""

STAY = """
program stay
var x : mod 2
action stay :: x == 0 --> x := 0
init x == 0
"""


class FakeClock:
    """Deterministic clock advancing by a fixed tick per reading."""

    def __init__(self, tick: float = 1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestNullInstrumentation:
    def test_all_verbs_are_noops(self):
        null = NullInstrumentation()
        assert null.count("x") is None
        assert null.count("x", 5) is None
        assert null.event("e", detail=1) is None
        assert null.annotate(key="value") is None

    def test_span_is_a_working_context_manager(self):
        with NULL_INSTRUMENTATION.span("phase"):
            pass

    def test_span_allocates_nothing(self):
        # Counter-based allocation check: the null object must hand out
        # the *same* span object on every call — N calls, one identity.
        null = NullInstrumentation()
        spans = [null.span(f"phase-{i}") for i in range(1000)]
        assert all(span is spans[0] for span in spans)

    def test_null_object_carries_no_state(self):
        # __slots__ = () on the whole hierarchy: no per-instance dict
        # to grow, so the verbs cannot accumulate anything.
        null = NullInstrumentation()
        assert not hasattr(null, "__dict__")
        null.count("c", 3)
        null.event("e", field=1)
        null.annotate(meta="x")
        assert not hasattr(null, "__dict__")

    def test_base_class_is_the_null_behaviour(self):
        base = Instrumentation()
        assert base.span("x") is NullInstrumentation().span("y")


class TestRecorder:
    def test_counters_accumulate(self):
        recorder = Recorder()
        recorder.count("a")
        recorder.count("a", 4)
        recorder.count("b", 2)
        assert recorder.counters == {"a": 5, "b": 2}
        assert recorder.counter("a") == 5
        assert recorder.counter("missing") == 0
        assert recorder.counter("missing", -1) == -1

    def test_spans_aggregate_per_name(self):
        recorder = Recorder(clock=FakeClock())
        with recorder.span("phase"):
            pass
        with recorder.span("phase"):
            pass
        record = recorder.record()
        assert record.spans["phase"].calls == 2
        # FakeClock ticks once per reading: each span lasts one tick.
        assert record.spans["phase"].seconds == pytest.approx(2.0)

    def test_events_keep_order_and_fields(self):
        recorder = Recorder(clock=FakeClock())
        recorder.event("first", value=1)
        recorder.event("second", value=2, flag=True)
        record = recorder.record()
        assert [event.name for event in record.events] == ["first", "second"]
        assert record.events[1].fields == {"value": 2, "flag": True}
        assert record.events[0].at < record.events[1].at

    def test_annotate_merges(self):
        recorder = Recorder(kind="check")
        recorder.annotate(seed=3)
        recorder.annotate(program="p", seed=7)
        record = recorder.record()
        assert record.kind == "check"
        assert record.meta == {"seed": 7, "program": "p"}

    def test_record_is_a_snapshot(self):
        recorder = Recorder()
        recorder.count("a")
        before = recorder.record()
        recorder.count("a")
        assert before.counters == {"a": 1}
        assert recorder.record().counters == {"a": 2}


class TestJsonlRoundTrip:
    def _sample(self) -> RunRecord:
        return RunRecord(
            kind="check",
            meta={"program": "p.gcl", "seed": 0},
            counters={"check.states.enumerated": 64},
            spans={"check.core": SpanStats(0.25, 2)},
            events=[EventRecord("check.verdict", 0.5, {"holds": True})],
            wall_seconds=0.75,
        )

    def test_round_trip_through_text(self):
        record = self._sample()
        text = "\n".join(record.to_jsonl_lines())
        loaded = loads_jsonl(text)
        assert len(loaded) == 1
        assert loaded[0].to_dict() == record.to_dict()

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = [self._sample(), RunRecord(kind="simulate")]
        write_jsonl(records, path)
        loaded = load_jsonl(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    def test_every_line_is_valid_json(self):
        for line in self._sample().to_jsonl_lines():
            json.loads(line)

    def test_unknown_tags_are_skipped(self):
        text = '{"t": "trace", "initial": {"x": 0}}\n{"t": "run", "kind": "r"}'
        assert len(loads_jsonl(text)) == 1

    def test_orphan_record_line_rejected(self):
        with pytest.raises(RunRecordError):
            loads_jsonl('{"t": "counter", "name": "c", "value": 1}')

    def test_malformed_json_rejected(self):
        with pytest.raises(RunRecordError):
            loads_jsonl("not json at all")

    def test_recorder_to_file_round_trip(self, tmp_path):
        recorder = Recorder(kind="simulate", clock=FakeClock(0.001))
        recorder.annotate(seed=7)
        recorder.count("sim.steps", 100)
        with recorder.span("sim.total"):
            recorder.event("sim.progress", steps=50)
        path = tmp_path / "run.jsonl"
        write_jsonl([recorder.record()], path)
        (loaded,) = load_jsonl(path)
        assert loaded.meta == {"seed": 7}
        assert loaded.counters["sim.steps"] == 100
        assert loaded.spans["sim.total"].calls == 1
        assert loaded.events[0].fields == {"steps": 50}


class TestInstrumentedChecker:
    def test_state_count_matches_schema_on_four_process_ring(self):
        system = btr_program(4).compile()
        recorder = Recorder()
        result = check_stabilization(
            system, system, instrumentation=recorder, fairness="weak"
        )
        assert recorder.counter("check.states.enumerated") == system.schema.size()
        assert recorder.counter("check.states.enumerated") == len(
            list(system.schema.states())
        )
        assert recorder.counter("check.core.size") == len(result.core)
        assert recorder.counter("check.legitimate.size") == len(
            result.legitimate_abstract
        )
        assert recorder.counter("check.outside.size") == system.schema.size() - len(
            result.core
        )

    def test_fixpoint_iteration_events(self):
        program = parse_program(SPIN).compile()
        recorder = Recorder()
        check_self_stabilization(program, instrumentation=recorder)
        iterations = recorder.counter("check.fixpoint.iterations")
        assert iterations >= 1
        events = [
            e for e in recorder.record().events
            if e.name == "check.fixpoint.iteration"
        ]
        assert len(events) == iterations
        assert events[0].fields["index"] == 1
        # Evictions recorded per iteration sum to the total counter.
        assert sum(e.fields["evicted"] for e in events) == recorder.counter(
            "check.states.evicted"
        )

    def test_verdict_event_and_phase_spans(self):
        program = parse_program(SPIN).compile()
        recorder = Recorder()
        result = check_self_stabilization(program, instrumentation=recorder)
        record = recorder.record()
        (verdict,) = [e for e in record.events if e.name == "check.verdict"]
        assert verdict.fields["holds"] == result.holds
        for phase in ("check.total", "check.legitimate", "check.core"):
            assert phase in record.spans
        assert record.spans["check.total"].seconds >= record.spans[
            "check.core"
        ].seconds

    def test_uninstrumented_call_unchanged(self):
        # The default instrumentation must not alter the verdict.
        system = btr_program(3).compile()
        plain = check_stabilization(system, system, fairness="weak")
        recorded = check_stabilization(
            system, system, fairness="weak", instrumentation=Recorder()
        )
        assert plain.holds == recorded.holds
        assert plain.core == recorded.core


class TestInstrumentedRefinement:
    def test_transition_counts(self):
        system = parse_program(SPIN).compile()
        recorder = Recorder()
        result = check_convergence_refinement(
            system, system, instrumentation=recorder
        )
        assert result.holds
        # SPIN has exactly two transitions (0->1 and 1->0), both exact.
        assert recorder.counter("refine.transitions.exact") == 2
        assert recorder.counter("refine.transitions.compressing") == 0
        assert recorder.counter("refine.transitions.stuttering") == 0
        record = recorder.record()
        (verdict,) = [e for e in record.events if e.name == "refine.verdict"]
        assert verdict.fields["holds"] is True
        assert "refine.transition_scan" in record.spans


class TestInstrumentedSimulator:
    def test_exact_step_counts(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        trace = simulate(program, 10, instrumentation=recorder)
        assert recorder.counter("sim.steps") == 10
        assert recorder.counter("sim.steps") == trace.step_count()
        assert recorder.counter("sim.stutters") == 0
        assert recorder.counter("sim.faults") == 0

    def test_stutter_counts(self):
        program = parse_program(STAY)
        recorder = Recorder()
        trace = simulate(program, 5, instrumentation=recorder)
        assert recorder.counter("sim.steps") == 5
        assert recorder.counter("sim.stutters") == 5
        assert trace.step_count() == 5

    def test_fault_counts(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        schedule = FaultSchedule(at_steps=[2, 4], injector=CorruptVariables(1))
        simulate(program, 10, faults=schedule, instrumentation=recorder)
        assert recorder.counter("sim.faults") == 2

    def test_seed_recorded_in_meta(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        simulate(program, 3, seed=42, instrumentation=recorder)
        assert recorder.record().meta["seed"] == 42

    def test_default_seed_is_zero(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        simulate(program, 3, instrumentation=recorder)
        assert recorder.record().meta["seed"] == 0

    def test_external_rng_hides_the_seed(self):
        import random

        program = parse_program(SPIN)
        recorder = Recorder()
        simulate(program, 3, rng=random.Random(1), instrumentation=recorder)
        assert recorder.record().meta["seed"] is None

    def test_seed_changes_the_run(self):
        # Two always-enabled actions: the daemon's random choice (and
        # hence the trace) must depend on the seed.
        program = parse_program(
            """
program pair
var x, y : mod 2
action fx0 :: x == 0 --> x := 1
action fx1 :: x == 1 --> x := 0
action fy0 :: y == 0 --> y := 1
action fy1 :: y == 1 --> y := 0
init x == 0 && y == 0
"""
        )
        labels_a = simulate(program, 30, seed=1).action_labels()
        labels_b = simulate(program, 30, seed=2).action_labels()
        assert labels_a != labels_b

    def test_convergence_event_from_run_until(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        steps = run_until(
            program,
            lambda env: env["x"] == 1,
            max_steps=10,
            instrumentation=recorder,
        )
        assert steps == 1
        events = {e.name: e for e in recorder.record().events}
        assert events["sim.run_until"].fields == {"converged": True, "steps": 1}
        assert events["sim.converged"].fields == {"step": 1}

    def test_timeout_event_from_run_until(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        steps = run_until(
            program,
            lambda env: False,
            max_steps=5,
            instrumentation=recorder,
        )
        assert steps is None
        (event,) = [
            e for e in recorder.record().events if e.name == "sim.run_until"
        ]
        assert event.fields == {"converged": False, "steps": None}

    def test_deadlock_event(self):
        toy = parse_program(
            """
program toy
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""
        )
        recorder = Recorder()
        simulate(toy, 5, instrumentation=recorder)
        (event,) = [
            e for e in recorder.record().events if e.name == "sim.deadlock"
        ]
        assert event.fields == {"step": 0}

    def test_progress_events_every_1000_steps(self):
        program = parse_program(SPIN)
        recorder = Recorder()
        simulate(program, 2500, instrumentation=recorder)
        progress = [
            e for e in recorder.record().events if e.name == "sim.progress"
        ]
        assert [e.fields["steps"] for e in progress] == [1000, 2000]
        assert all(e.fields["window_seconds"] >= 0 for e in progress)


class TestReportRendering:
    def test_summarize_record_shows_key_metrics(self):
        recorder = Recorder(kind="check", clock=FakeClock(0.001))
        recorder.annotate(program="ring.gcl")
        recorder.count("check.states.enumerated", 64)
        with recorder.span("check.core"):
            pass
        recorder.event("check.verdict", holds=True)
        text = summarize_record(recorder.record())
        assert "run: check" in text
        assert "check.states.enumerated" in text
        assert "64" in text
        assert "check.core" in text
        assert "check.verdict" in text

    def test_summarize_text_renders_runs_and_traces(self):
        recorder = Recorder(kind="simulate")
        recorder.count("sim.steps", 3)
        trace_lines = (
            '{"t": "trace", "initial": {"x": 0}}\n'
            '{"t": "trace-event", "kind": "step", "label": "a", "env": {"x": 1}}'
        )
        text = "\n".join(recorder.record().to_jsonl_lines()) + "\n" + trace_lines
        rendered = summarize_text(text)
        assert "run: simulate" in rendered
        assert "trace: 1 events" in rendered

    def test_summarize_empty_text(self):
        assert "no run records" in summarize_text("")

    def test_event_listing_mode(self):
        recorder = Recorder(clock=FakeClock(0.001))
        recorder.event("sim.progress", steps=1000)
        rendered = summarize_record(recorder.record(), events=True)
        assert "steps=1000" in rendered
