"""The visited-set backing ladder and its unconditional cleanup.

The ladder (private array, shm segment, mmap file) must be invisible
to the fixpoints: same bits, same verdicts, and nothing left on disk
or in ``/dev/shm`` afterwards — including when the run dies to a
``KeyboardInterrupt`` mid-fixpoint or the mmap backing cannot be
created at all (which must degrade, not crash).
"""

from __future__ import annotations

import os

import pytest

from repro.kernel.vector import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the shared engine needs NumPy"
)


def _shm_leaks() -> list:
    # Segments owned by this process or by a dead driver are leaks; a
    # live concurrent run (xdist, a benchmark) owns its own segments.
    from repro.kernel.shared import shm_dir

    directory = shm_dir()
    if directory is None:
        return []
    leaks = []
    for name in os.listdir(directory):
        if not name.startswith("rs-"):
            continue
        try:
            owner = int(name.split("-")[1], 16)
        except (IndexError, ValueError):
            leaks.append(name)
            continue
        if owner == os.getpid():
            leaks.append(name)
            continue
        try:
            os.kill(owner, 0)
        except ProcessLookupError:
            leaks.append(name)
        except PermissionError:
            pass
    return sorted(leaks)


class TestMmapBitField:
    def test_bits_persist_through_the_file(self, tmp_path):
        import numpy as np

        from repro.kernel.shared import MmapBitField

        path = str(tmp_path / "field.bits")
        field = MmapBitField(4096, path)
        codes = np.array([0, 5, 4095], dtype=np.int64)
        field.set_codes(codes)
        field.flush()
        reader = MmapBitField(4096, path, create=False, readonly=True)
        assert reader.test(codes).all()
        assert reader.count() == 3
        reader.release_buffer()
        field.release_buffer()

    def test_unwritable_path_raises_engine_fault(self, tmp_path):
        from repro.kernel.shared import MmapBitField
        from repro.resilience import EngineFault

        with pytest.raises(EngineFault, match="mmap visited backing"):
            MmapBitField(64, str(tmp_path / "missing" / "field.bits"))


class TestOpenVisitedLadder:
    def _runtime(self, tmp_path, budget, workers=1):
        from repro.kernel.shared import (
            MemoryContext,
            SharedKernel,
            open_runtime,
        )
        from repro.rings import kstate_program

        kernel = SharedKernel(kstate_program(3, 4))
        context = MemoryContext(
            budget_bytes=budget, spill_dir=str(tmp_path)
        )
        return kernel, open_runtime(kernel, workers=workers, context=context)

    def test_small_field_stays_private(self, tmp_path):
        from repro.kernel.shared import open_visited

        kernel, runtime_cm = self._runtime(tmp_path, 1 << 20)
        with runtime_cm as runtime:
            handle = open_visited(runtime, kernel.size, "t")
            assert not handle.sharable
            assert handle.ref is None
            assert handle.detach_private() is handle.field

    def test_workers_get_a_shm_segment(self, tmp_path):
        import numpy as np

        from repro.kernel.shared import attach_visited, open_visited

        kernel, runtime_cm = self._runtime(tmp_path, 1 << 20, workers=2)
        with runtime_cm as runtime:
            handle = open_visited(runtime, kernel.size, "t")
            assert handle.sharable and handle.ref[0] == "shm"
            codes = np.array([1, 7], dtype=np.int64)
            handle.field.set_codes(codes)
            attached = attach_visited(handle.ref)
            assert attached.field.test(codes).all()
            attached.close()
            private = handle.detach_private()
            assert private.test(codes).all()
        assert _shm_leaks() == []

    def test_big_field_pages_onto_mmap(self, tmp_path):
        import numpy as np

        from repro.kernel.shared import attach_visited, open_visited
        from repro.obs import Recorder

        recorder = Recorder()
        # 16 states need 2 bytes of flags; a 16-byte budget makes the
        # threshold 1 byte, forcing the mmap rung.
        kernel, runtime_cm = self._runtime(tmp_path, 16)
        with runtime_cm as runtime:
            handle = open_visited(
                runtime, kernel.size, "t", instrumentation=recorder
            )
            assert handle.sharable and handle.ref[0] == "mmap"
            path = handle.ref[1][0]
            assert os.path.exists(path)
            codes = np.array([0, 63], dtype=np.int64)
            handle.field.set_codes(codes)
            handle.flush()
            attached = attach_visited(handle.ref)
            assert attached.field.test(codes).all()
            attached.close()
            private = handle.detach_private()
            assert private.test(codes).all()
            assert not os.path.exists(path)  # detach released the file
        counters = recorder.record().counters
        assert counters["shm.visited.mmap_bytes"] >= 1
        assert list(tmp_path.iterdir()) == []  # spill dir swept

    def test_mmap_disabled_by_context_flag(self, tmp_path):
        from repro.kernel.shared import (
            MemoryContext,
            SharedKernel,
            open_runtime,
            open_visited,
        )
        from repro.rings import kstate_program

        kernel = SharedKernel(kstate_program(3, 4))
        context = MemoryContext(
            budget_bytes=16, spill_dir=str(tmp_path), mmap_visited=False
        )
        with open_runtime(kernel, context=context) as runtime:
            handle = open_visited(runtime, kernel.size, "t")
            assert handle.ref is None  # fell through to private


class TestUnconditionalCleanup:
    def test_keyboard_interrupt_leaves_empty_spill_dir(self, tmp_path):
        """A ^C mid-fixpoint must still sweep segments, mmap visited
        files, and the whole run spill directory."""
        from repro.checker import check_stabilization
        from repro.kernel.shared import using_memory_budget
        from repro.obs import Instrumentation
        from repro.rings import kstate_program, utr_abstraction, utr_program

        class Interrupter(Instrumentation):
            def __init__(self):
                self.events = 0

            def event(self, name, **fields):
                if name.startswith("check.fixpoint"):
                    raise KeyboardInterrupt

        with using_memory_budget(
            "64K", spill_dir=str(tmp_path)
        ):
            with pytest.raises(KeyboardInterrupt):
                check_stabilization(
                    kstate_program(4, 4),
                    utr_program(4),
                    utr_abstraction(4, 4),
                    engine="shared",
                    instrumentation=Interrupter(),
                )
        assert list(tmp_path.iterdir()) == []
        assert _shm_leaks() == []

    def test_mmap_failure_degrades_to_vector_with_identical_verdict(
        self, tmp_path, monkeypatch
    ):
        """An unusable mmap backing is an EngineFault, and the
        degradation chain must absorb it."""
        from repro.checker import check_stabilization
        from repro.kernel.shared import using_memory_budget
        from repro.kernel.shared import visited as visited_module
        from repro.obs import Recorder
        from repro.resilience import EngineFault
        from repro.rings import kstate_program, utr_abstraction, utr_program

        def broken_backing(*args, **kwargs):
            raise EngineFault(
                "mmap visited backing failed: "
                "[Errno 28] No space left on device"
            )

        monkeypatch.setattr(visited_module, "MmapBitField", broken_backing)
        baseline = check_stabilization(
            kstate_program(4, 4),
            utr_program(4),
            utr_abstraction(4, 4),
            engine="vector",
        )
        recorder = Recorder()
        # A 256-byte budget puts the threshold below the 32-byte flag
        # field, forcing the (broken) mmap rung.
        with using_memory_budget("256", spill_dir=str(tmp_path)):
            degraded = check_stabilization(
                kstate_program(4, 4),
                utr_program(4),
                utr_abstraction(4, 4),
                engine="shared",
                instrumentation=recorder,
            )
        assert degraded.format() == baseline.format()
        counters = recorder.record().counters
        assert counters["engine.fallback.vector"] == 1
        assert list(tmp_path.iterdir()) == []
        assert _shm_leaks() == []
