"""Unit tests for stabilization checking."""

import pytest

from repro.core.stabilization import (
    behavioural_core,
    check_self_stabilization,
    check_stabilization,
    legitimate_abstract_states,
    sequence_has_legitimate_suffix,
    stabilizes_on_computations,
    worst_case_convergence_steps,
)
from repro.core.state import StateSchema
from repro.core.system import System
from repro.checker.witnesses import WitnessKind


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(6))})


def sys_of(schema, pairs, initial=((0,),), name="s", labels=None):
    label_map = None
    if labels:
        label_map = {((a,), (b,)): names for (a, b), names in labels.items()}
    return System(
        schema,
        [((a,), (b,)) for a, b in pairs],
        initial=initial,
        name=name,
        labels=label_map,
    )


@pytest.fixture
def ring_spec(schema):
    """Legitimate behaviour: the 3-cycle 0 -> 1 -> 2 -> 0."""
    return sys_of(schema, [(0, 1), (1, 2), (2, 0)], name="spec")


class TestLegitimateStates:
    def test_reachable_set(self, ring_spec):
        assert legitimate_abstract_states(ring_spec) == {(0,), (1,), (2,)}


class TestBehaviouralCore:
    def test_core_of_converging_system(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 0), (4, 3), (5, 3)],
            name="C",
        )
        core = behavioural_core(concrete, ring_spec)
        assert core == {(0,), (1,), (2,)}

    def test_escaping_state_is_excluded(self, schema, ring_spec):
        # 2 -> 3 escapes the legitimate region, poisoning the whole cycle.
        concrete = sys_of(schema, [(0, 1), (1, 2), (2, 0), (2, 3)], name="C")
        core = behavioural_core(concrete, ring_spec)
        assert core == frozenset()

    def test_premature_deadlock_excluded(self, schema, ring_spec):
        concrete = sys_of(schema, [(0, 1), (1, 2)], name="C")  # stops at 2
        core = behavioural_core(concrete, ring_spec)
        assert (2,) not in core

    def test_stutter_tolerated_in_stutter_mode(self, schema, ring_spec):
        concrete = sys_of(schema, [(0, 1), (1, 1), (1, 2), (2, 0)], name="C")
        assert behavioural_core(concrete, ring_spec) == frozenset()
        assert behavioural_core(
            concrete, ring_spec, stutter_insensitive=True
        ) == {(0,), (1,), (2,)}


class TestCheckStabilization:
    def test_converging_system_holds(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 0), (4, 3), (5, 3)],
            name="C",
        )
        result = check_stabilization(concrete, ring_spec)
        assert result.holds
        assert result.worst_case_steps == 2  # 4 or 5 -> 3 -> 0

    def test_divergent_cycle_fails(self, schema, ring_spec):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)], name="C"
        )
        result = check_stabilization(concrete, ring_spec)
        assert not result.holds
        assert result.result.witness.kind is WitnessKind.DIVERGENT_CYCLE

    def test_illegitimate_deadlock_fails(self, schema, ring_spec):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (4, 3), (5, 3)], name="C"
        )
        result = check_stabilization(concrete, ring_spec)
        assert not result.holds
        assert result.result.witness.kind is WitnessKind.ILLEGITIMATE_DEADLOCK

    def test_empty_core_reported(self, schema, ring_spec):
        concrete = sys_of(schema, [(0, 3), (3, 0), (1, 3), (2, 3), (4, 3), (5, 3)],
                          name="C")
        result = check_stabilization(concrete, ring_spec)
        assert not result.holds
        assert result.result.witness.kind is WitnessKind.CLOSURE_VIOLATION

    def test_weak_fairness_discounts_self_loops(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 3), (3, 0), (4, 3), (5, 3)],
            name="C",
        )
        assert not check_stabilization(concrete, ring_spec, fairness="none").holds
        assert check_stabilization(concrete, ring_spec, fairness="weak").holds

    def test_self_loop_only_state_is_a_deadlock_under_weak(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 3), (4, 0), (5, 0)],
            name="C",
        )
        result = check_stabilization(concrete, ring_spec, fairness="weak")
        assert not result.holds
        assert result.result.witness.kind is WitnessKind.ILLEGITIMATE_DEADLOCK

    def test_strong_fairness_breaks_escapable_cycle(self, schema, ring_spec):
        # 3 <-> 4 cycle via action "spin", with an exit labelled "exit"
        # from 3 to 0.  Unfair: divergent.  Strong fairness: must exit.
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (3, 0), (5, 0)],
            name="C",
            labels={(3, 4): ["spin"], (4, 3): ["spin"], (3, 0): ["exit"],
                    (5, 0): ["r"]},
        )
        assert not check_stabilization(concrete, ring_spec, fairness="none").holds
        assert check_stabilization(concrete, ring_spec, fairness="strong").holds

    def test_strong_fairness_detects_true_trap(self, schema, ring_spec):
        # 3 <-> 4 with no exit at all: divergent under every fairness.
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)],
            name="C",
            labels={(3, 4): ["spin"], (4, 3): ["spin"], (5, 0): ["r"]},
        )
        assert not check_stabilization(concrete, ring_spec, fairness="strong").holds

    def test_unknown_fairness_rejected(self, schema, ring_spec):
        with pytest.raises(ValueError):
            check_stabilization(ring_spec, ring_spec, fairness="bogus")

    def test_compute_steps_flag(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 0), (4, 0), (5, 0)],
            name="C",
        )
        result = check_stabilization(concrete, ring_spec, compute_steps=False)
        assert result.holds
        assert result.worst_case_steps is None


class TestSelfStabilization:
    def test_spec_with_recovery_is_self_stabilizing(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 0), (4, 0), (5, 0)], name="S"
        )
        assert check_self_stabilization(system).holds

    def test_spec_without_recovery_is_not(self, schema, ring_spec):
        assert not check_self_stabilization(ring_spec).holds


class TestWorstCaseSteps:
    def test_longest_escape_path(self, schema, ring_spec):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)], name="C"
        )
        core = behavioural_core(concrete, ring_spec)
        assert worst_case_convergence_steps(concrete, core) == 3

    def test_cycle_outside_core_raises(self, schema, ring_spec):
        concrete = sys_of(schema, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)], name="C")
        core = behavioural_core(concrete, ring_spec)
        with pytest.raises(ValueError):
            worst_case_convergence_steps(concrete, core)


class TestDefinitionalOracle:
    def test_suffix_detection(self, ring_spec):
        assert sequence_has_legitimate_suffix(
            [(4,), (3,), (0,), (1,)], ring_spec, complete=False
        )
        assert not sequence_has_legitimate_suffix(
            [(4,), (3,)], ring_spec, complete=False
        )

    def test_complete_requires_terminal_match(self, ring_spec):
        # the spec never terminates, so no complete run can match.
        assert not sequence_has_legitimate_suffix(
            [(0,), (1,)], ring_spec, complete=True
        )

    def test_oracle_agrees_on_positive(self, schema, ring_spec):
        concrete = sys_of(
            schema,
            [(0, 1), (1, 2), (2, 0), (3, 0), (4, 3), (5, 3)],
            name="C",
        )
        assert stabilizes_on_computations(concrete, ring_spec, max_length=8)

    def test_oracle_agrees_on_negative(self, schema, ring_spec):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)], name="C"
        )
        assert not stabilizes_on_computations(concrete, ring_spec, max_length=8)

    def test_oracle_fairness_validation(self, ring_spec):
        with pytest.raises(ValueError):
            stabilizes_on_computations(ring_spec, ring_spec, fairness="bogus")
