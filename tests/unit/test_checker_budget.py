"""Unit tests for state budgets and PARTIAL checker verdicts.

The degradation contract: a budget-capped check never exhausts memory
— past the cap it returns a structured ``PARTIAL`` verdict recording
how far it got — and a budget large enough to finish changes nothing:
the verdict is identical to the unbudgeted run.
"""

from __future__ import annotations

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
)
from repro.checker.budget import BudgetExceeded, BudgetMeter, PartialExploration
from repro.rings import btr_program, btr4_abstraction, dijkstra_four_state


class TestBudgetMeter:
    def test_unlimited_meter_never_trips(self):
        meter = BudgetMeter(None)
        meter.charge("phase", count=10**9)
        assert meter.explored == 10**9

    def test_charge_past_budget_raises_with_cutoff_details(self):
        meter = BudgetMeter(3)
        meter.charge("check.core", count=3)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.charge("check.core", frontier=7)
        partial = excinfo.value.partial
        assert partial.explored == 3
        assert partial.budget == 3
        assert partial.frontier == 7
        assert partial.phase == "check.core"

    def test_metered_yields_until_the_cap(self):
        meter = BudgetMeter(2)
        consumed = []
        with pytest.raises(BudgetExceeded):
            for item in meter.metered("abcde", "scan"):
                consumed.append(item)
        assert consumed == ["a", "b"]

    def test_budget_is_pooled_across_phases(self):
        meter = BudgetMeter(5)
        meter.charge("first", count=4)
        with pytest.raises(BudgetExceeded) as excinfo:
            meter.charge("second", count=2)
        assert excinfo.value.partial.phase == "second"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_budget_rejected(self, bad):
        with pytest.raises(ValueError):
            BudgetMeter(bad)

    def test_partial_format_mentions_budget_and_phase(self):
        partial = PartialExploration(10, 4, 10, "refine.everywhere")
        text = partial.format()
        assert "10" in text and "refine.everywhere" in text and "frontier 4" in text


class TestStabilizationBudget:
    def test_tiny_budget_yields_partial_not_memoryerror(self, btr4_bundle):
        btr, _, dijkstra4, alpha4 = btr4_bundle
        result = check_stabilization(dijkstra4, btr, alpha4, state_budget=3)
        assert result.is_partial
        assert not result.holds
        assert result.result.verdict == "PARTIAL"
        assert result.result.partial.explored <= 3
        assert "budget" in result.result.format()

    def test_large_budget_matches_unbudgeted_verdict(self, btr4_bundle):
        btr, _, dijkstra4, alpha4 = btr4_bundle
        unbudgeted = check_stabilization(dijkstra4, btr, alpha4)
        budgeted = check_stabilization(
            dijkstra4, btr, alpha4, state_budget=10**9
        )
        assert unbudgeted.holds and budgeted.holds
        assert not budgeted.is_partial
        assert budgeted.core == unbudgeted.core

    def test_self_stabilization_accepts_budget(self, btr4_bundle):
        btr, _, _, _ = btr4_bundle
        result = check_self_stabilization(btr, state_budget=2)
        assert result.is_partial

    def test_failing_check_is_not_partial(self, btr4_bundle):
        # BTR does not self-stabilize: a real counterexample, not a
        # budget cut-off, and the two must stay distinguishable.
        btr, _, _, _ = btr4_bundle
        result = check_self_stabilization(btr)
        assert not result.holds
        assert not result.is_partial
        assert result.result.verdict == "FAILS"


class TestRefinementBudget:
    def test_init_refinement_tiny_budget_is_partial(self, btr4_bundle):
        btr, c1, _, alpha4 = btr4_bundle
        result = check_init_refinement(c1, btr, alpha4, state_budget=2)
        assert result.is_partial
        assert not result.holds

    def test_init_refinement_large_budget_matches_unbudgeted(self, btr4_bundle):
        btr, c1, _, alpha4 = btr4_bundle
        unbudgeted = check_init_refinement(c1, btr, alpha4)
        budgeted = check_init_refinement(c1, btr, alpha4, state_budget=10**9)
        assert budgeted.holds == unbudgeted.holds
        assert not budgeted.is_partial

    def test_convergence_refinement_tiny_budget_is_partial(self):
        n = 3
        concrete = dijkstra_four_state(n).compile()
        abstract = btr_program(n).compile()
        result = check_convergence_refinement(
            concrete, abstract, btr4_abstraction(n), state_budget=2
        )
        assert result.is_partial
        assert "budget" in result.format()

    def test_convergence_refinement_large_budget_matches_unbudgeted(self):
        n = 3
        concrete = dijkstra_four_state(n).compile()
        abstract = btr_program(n).compile()
        alpha = btr4_abstraction(n)
        unbudgeted = check_convergence_refinement(concrete, abstract, alpha)
        budgeted = check_convergence_refinement(
            concrete, abstract, alpha, state_budget=10**9
        )
        assert budgeted.holds == unbudgeted.holds
        assert not budgeted.is_partial
