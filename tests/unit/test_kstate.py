"""Unit tests for UTR and Dijkstra's K-state protocol."""

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.gcl.process import check_model_compliance
from repro.rings.kstate import kstate_program, utr_program
from repro.rings.mappings import utr_abstraction


class TestUTR:
    def test_single_token_circulates(self):
        system = utr_program(3).compile()
        schema = system.schema
        state = schema.pack({"t.0": True, "t.1": False, "t.2": False})
        (successor,) = system.successors(state)
        assert schema.unpack(successor) == {"t.0": False, "t.1": True, "t.2": False}

    def test_wraps_around(self):
        system = utr_program(3).compile()
        schema = system.schema
        state = schema.pack({"t.0": False, "t.1": False, "t.2": True})
        (successor,) = system.successors(state)
        assert schema.value(successor, "t.0") is True

    def test_tokens_merge_on_collision(self):
        system = utr_program(3).compile()
        schema = system.schema
        state = schema.pack({"t.0": True, "t.1": True, "t.2": False})
        targets = system.successors(state)
        merged = schema.pack({"t.0": False, "t.1": True, "t.2": False})
        assert merged in targets

    def test_initial_states_are_single_token(self):
        program = utr_program(4)
        assert len(list(program.initial_states())) == 4

    def test_utr_is_not_self_stabilizing(self):
        """Two tokens can rotate forever: the abstraction alone cannot
        explain K-state convergence (see EXPERIMENTS.md E11)."""
        from repro.checker import check_self_stabilization

        assert not check_self_stabilization(utr_program(3).compile()).holds

    @pytest.mark.parametrize("fairness", ["none", "weak", "strong"])
    def test_wrapped_utr_fails_under_every_fairness(self, fairness):
        """The unidirectional contrast to Theorem 6: two lockstep
        tokens defeat even strong fairness — rotation keeps every
        move action firing, so no fairness obligation is violated and
        no merge is ever forced.  Only the K-state counters fix it."""
        from repro.core.composition import box
        from repro.rings import utr_token_creation_wrapper

        n = 4
        utr = utr_program(n).compile()
        composite = box(utr, utr_token_creation_wrapper(n).compile())
        result = check_stabilization(
            composite, utr, fairness=fairness, compute_steps=False
        )
        assert not result.holds


class TestKState:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            kstate_program(3, 1)

    def test_concrete_model_compliant(self):
        assert check_model_compliance(kstate_program(4, 4).processes) == []

    def test_init_refines_utr(self):
        n, k = 4, 4
        result = check_init_refinement(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
        )
        assert result.holds, result.format()

    def test_convergence_refinement_of_utr(self):
        """[K-state <= UTR]: merges are compressions, never on cycles."""
        n, k = 3, 3
        result = check_convergence_refinement(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
        )
        assert result.holds, result.format()

    @pytest.mark.parametrize("n,k", [(3, 3), (4, 4), (5, 5), (4, 3)])
    def test_stabilizes_for_large_enough_k(self, n, k):
        result = check_stabilization(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
            fairness="none",
        )
        assert result.holds, result.format()

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3)])
    def test_fails_below_the_threshold(self, n, k):
        """The classical bound, rediscovered: K >= n - 1 is required."""
        result = check_stabilization(
            kstate_program(n, k).compile(),
            utr_program(n).compile(),
            utr_abstraction(n, k),
            fairness="none",
            compute_steps=False,
        )
        assert not result.holds

    def test_exactly_one_privilege_in_legitimate_states(self):
        n, k = 4, 4
        system = kstate_program(n, k).compile()
        alpha = utr_abstraction(n, k)
        for state in system.reachable():
            image = alpha(state)
            assert sum(1 for value in image if value) == 1
