"""Unit tests for the supervised fork-per-task executor.

The invariants under test: results and order match ``Pool.map``
semantics exactly; ordinary task exceptions propagate (they are not
supervision failures); a worker killed mid-task is retried, not hung;
a task whose every attempt dies is quarantined to an inline run with
the identical result; a stuck task is reaped at the timeout; and the
pool-level iterator guard rejects consumption after ``__exit__``.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import Recorder
from repro.parallel.pool import WorkerPool, parallel_available
from repro.resilience import (
    FaultAction,
    FaultPlan,
    SupervisionPolicy,
    supervised_map,
    supervised_unordered,
    using_chaos,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork-based pools unavailable"
)

#: Fast retry schedule so the fault tests do not sleep for real.
FAST = SupervisionPolicy(backoff_base=0.001, backoff_cap=0.005)


def square(value):
    return value * value


def explode(value):
    raise ValueError(f"task says no to {value}")


def slow_identity(value):
    time.sleep(value)
    return value


class TestSupervisedMap:
    def test_results_in_order(self):
        assert supervised_map(square, list(range(8)), 3, policy=FAST) == [
            value * value for value in range(8)
        ]

    def test_empty_items(self):
        assert supervised_map(square, [], 2, policy=FAST) == []

    def test_ordinary_exception_propagates(self):
        # Whichever attempt lands first raises; both carry the marker.
        with pytest.raises(ValueError, match="task says no to"):
            supervised_map(explode, [1, 2], 2, policy=FAST)

    def test_unordered_yields_every_index_once(self):
        pairs = list(supervised_unordered(square, [3, 4, 5], 2, policy=FAST))
        assert sorted(pairs) == [(0, 9), (1, 16), (2, 25)]


class TestWorkerDeathRecovery:
    def test_killed_worker_is_retried_with_identical_results(self):
        plan = FaultPlan(
            faults=(FaultAction(kind="kill-worker", task=1, attempt=0),)
        )
        recorder = Recorder(kind="test")
        with using_chaos(plan):
            results = supervised_map(
                square, [2, 3, 4], 2, policy=FAST, instrumentation=recorder
            )
        assert results == [4, 9, 16]
        counters = recorder.record().counters
        assert counters["resilience.worker.death"] == 1
        assert counters["resilience.task.retries"] == 1
        assert "resilience.task.quarantined" not in counters

    def test_poison_task_quarantines_to_an_inline_run(self):
        plan = FaultPlan(
            faults=(FaultAction(kind="kill-worker", task=0, attempt="*"),)
        )
        policy = SupervisionPolicy(
            max_task_retries=1, backoff_base=0.001, backoff_cap=0.005
        )
        recorder = Recorder(kind="test")
        with using_chaos(plan):
            results = supervised_map(
                square, [5, 6], 2, policy=policy, instrumentation=recorder
            )
        # The quarantined inline run still computes the right answer:
        # chaos worker faults only fire in forked children.
        assert results == [25, 36]
        counters = recorder.record().counters
        assert counters["resilience.worker.death"] == 2  # attempts 0 and 1
        assert counters["resilience.task.quarantined"] == 1
        assert counters["resilience.sequential_fallback"] == 1

    def test_death_event_carries_coordinates(self):
        plan = FaultPlan(
            faults=(FaultAction(kind="kill-worker", task=0, attempt=0),)
        )
        recorder = Recorder(kind="test")
        with using_chaos(plan):
            supervised_map(
                square, [1], 2, policy=FAST, instrumentation=recorder
            )
        events = [
            event
            for event in recorder.record().events
            if event.name == "resilience.worker.death"
        ]
        assert len(events) == 1
        assert events[0].fields["phase"] == "square"
        assert events[0].fields["task"] == 0
        assert events[0].fields["attempt"] == 0


class TestTimeoutRecovery:
    def test_stalled_task_is_reaped_and_retried(self):
        # The chaos delay stalls only attempt 0; the retry runs clean.
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="delay-task", task=0, attempt=0, seconds=5.0
                ),
            )
        )
        policy = SupervisionPolicy(
            task_timeout=0.25, backoff_base=0.001, backoff_cap=0.005
        )
        recorder = Recorder(kind="test")
        start = time.monotonic()
        with using_chaos(plan):
            results = supervised_map(
                slow_identity,
                [0.0, 0.0],
                2,
                policy=policy,
                instrumentation=recorder,
            )
        elapsed = time.monotonic() - start
        assert results == [0.0, 0.0]
        assert elapsed < 5.0  # the 5s stall was reaped, not waited out
        counters = recorder.record().counters
        assert counters["resilience.task.timeout"] == 1
        assert counters["resilience.task.retries"] == 1


class TestPoolIteratorGuard:
    def test_imap_consumed_after_exit_raises(self):
        with WorkerPool(2) as pool:
            iterator = iter(pool.imap_unordered(square, [1, 2, 3]))
        with pytest.raises(RuntimeError, match="after the pool's context"):
            list(iterator)

    def test_imap_inside_context_works(self):
        with WorkerPool(2) as pool:
            results = sorted(pool.imap_unordered(square, [1, 2, 3]))
        assert results == [1, 4, 9]

    def test_map_outside_context_raises(self):
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError, match="outside its context"):
            pool.map(square, [1])
