"""Unit tests for the simulation engine and the token decoders."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.gcl.parser import parse_program
from repro.rings.btr import btr_program
from repro.rings.btr3 import dijkstra_three_state
from repro.rings.btr4 import dijkstra_four_state
from repro.rings.kstate import kstate_program
from repro.rings.mappings import btr3_abstraction, btr4_abstraction, utr_abstraction
from repro.rings.tokens import tokens_in_state
from repro.rings.topology import Ring
from repro.simulation.faults import CorruptVariables, FaultSchedule
from repro.simulation.metrics import (
    btr_tokens,
    four_state_tokens,
    kstate_tokens,
    legitimacy_predicate,
    three_state_tokens,
)
from repro.simulation.runner import run_until, simulate

COUNTDOWN = """
program countdown
var x : 0..5
action dec :: x > 0 --> x := x - 1
init x == 5
"""


class TestSimulate:
    def test_runs_to_deadlock(self):
        program = parse_program(COUNTDOWN)
        trace = simulate(program, steps=100, rng=random.Random(0))
        assert trace.final() == {"x": 0}
        assert trace.step_count() == 5

    def test_step_budget_respected(self):
        program = parse_program(COUNTDOWN)
        trace = simulate(program, steps=2, rng=random.Random(0))
        assert trace.final() == {"x": 3}

    def test_stop_when_predicate(self):
        program = parse_program(COUNTDOWN)
        trace = simulate(
            program, 100, rng=random.Random(0),
            stop_when=lambda env: env["x"] == 2,
        )
        assert trace.final() == {"x": 2}

    def test_explicit_initial_environment(self):
        program = parse_program(COUNTDOWN)
        trace = simulate(program, 100, rng=random.Random(0), initial={"x": 1})
        assert trace.step_count() == 1

    def test_missing_initial_variable_rejected(self):
        program = parse_program(COUNTDOWN)
        with pytest.raises(SimulationError):
            simulate(program, 10, initial={})

    def test_program_without_initial_needs_explicit(self):
        program = parse_program(
            "program w\nvar x : bool\naction t :: x --> x := false"
        )
        with pytest.raises(SimulationError):
            simulate(program, 10)

    def test_fault_injection_recorded(self):
        program = parse_program(COUNTDOWN)
        trace = simulate(
            program, 10, rng=random.Random(0),
            faults=FaultSchedule([1], CorruptVariables(1)),
        )
        assert trace.fault_count() == 1

    def test_stutter_steps_marked(self):
        program = parse_program(
            "program s\nvar x : bool\naction idle :: x --> x := true\ninit x"
        )
        trace = simulate(program, 3, rng=random.Random(0))
        assert all(e.kind == "stutter" for e in trace.events)


class TestRunUntil:
    def test_returns_steps_on_success(self):
        program = parse_program(COUNTDOWN)
        steps = run_until(
            program, lambda env: env["x"] == 0, 100, rng=random.Random(0)
        )
        assert steps == 5

    def test_returns_none_on_budget_exhaustion(self):
        program = parse_program(COUNTDOWN)
        assert run_until(
            program, lambda env: env["x"] == -1, 3, rng=random.Random(0)
        ) is None


class TestTokenDecoders:
    """Each env-level decoder must agree with the packed abstraction."""

    def test_btr_tokens_match_schema_decoder(self):
        n = 4
        program = btr_program(n)
        schema = program.schema()
        ring = Ring(n)
        for state in list(schema.states())[:64]:
            env = schema.unpack(state)
            assert set(btr_tokens(ring, env)) == set(tokens_in_state(schema, state))

    def test_four_state_decoder_matches_alpha4(self):
        n = 4
        alpha = btr4_abstraction(n)
        abstract_schema = btr_program(n).schema()
        ring = Ring(n)
        program = dijkstra_four_state(n)
        schema = program.schema()
        for state in schema.states():
            env = schema.unpack(state)
            expected = set(tokens_in_state(abstract_schema, alpha(state)))
            assert set(four_state_tokens(ring, env)) == expected

    def test_three_state_decoder_matches_alpha3(self):
        n = 4
        alpha = btr3_abstraction(n)
        abstract_schema = btr_program(n).schema()
        ring = Ring(n)
        schema = dijkstra_three_state(n).schema()
        for state in schema.states():
            env = schema.unpack(state)
            expected = set(tokens_in_state(abstract_schema, alpha(state)))
            assert set(three_state_tokens(ring, env)) == expected

    def test_kstate_decoder_matches_alphak(self):
        n, k = 4, 3
        alpha = utr_abstraction(n, k)
        ring = Ring(n)
        program = kstate_program(n, k)
        schema = program.schema()
        abstract_schema = alpha.abstract_schema
        for state in schema.states():
            env = schema.unpack(state)
            image = alpha(state)
            expected = {
                name
                for name in abstract_schema.names
                if abstract_schema.value(image, name)
            }
            assert set(kstate_tokens(ring, env)) == expected


class TestLegitimacyPredicate:
    def test_three_state_initial_is_legitimate(self):
        program = dijkstra_three_state(5)
        predicate = legitimacy_predicate("three", 5)
        env = program.env_of(next(program.initial_states()))
        assert predicate(env)

    def test_uniform_counters_are_not(self):
        predicate = legitimacy_predicate("three", 5)
        env = {Ring.c(j): 0 for j in range(5)}
        assert not predicate(env)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            legitimacy_predicate("bogus", 4)
