"""Unit tests for the worst-case schedule extractor."""

import pytest

from repro.checker import (
    behavioural_core,
    check_stabilization,
    worst_case_convergence_steps,
    worst_case_schedule,
)
from repro.core.state import StateSchema
from repro.core.system import System
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(6))})


def sys_of(schema, pairs, initial=((0,),)):
    return System(schema, [((a,), (b,)) for a, b in pairs], initial=initial)


class TestOnToySystems:
    def test_path_matches_reported_length(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)]
        )
        core = behavioural_core(system, system)
        steps = worst_case_convergence_steps(system, core)
        path = worst_case_schedule(system, core)
        assert len(path) - 1 == steps == 3
        assert path == ((5,), (4,), (3,), (0,))

    def test_path_is_a_real_computation_prefix(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)]
        )
        core = behavioural_core(system, system)
        path = worst_case_schedule(system, core)
        assert system.is_computation(path, require_maximal=False)

    def test_only_last_state_in_core(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)]
        )
        core = behavioural_core(system, system)
        path = worst_case_schedule(system, core)
        assert all(state not in core for state in path[:-1])
        assert path[-1] in core

    def test_empty_when_everything_is_core(self, schema):
        system = sys_of(schema, [(v, (v + 1) % 6) for v in range(6)],
                        initial=[(v,) for v in range(6)])
        core = behavioural_core(system, system)
        assert core == frozenset((v,) for v in range(6))
        assert worst_case_schedule(system, core) == ()

    def test_cycle_outside_core_raises(self, schema):
        system = sys_of(schema, [(0, 0), (3, 4), (4, 3)])
        core = frozenset({(0,)})
        with pytest.raises(ValueError):
            worst_case_schedule(system, core)


class TestOnDijkstra3:
    def test_schedule_realizes_the_exact_bound(self):
        n = 4
        system = dijkstra_three_state(n).compile()
        result = check_stabilization(
            system, btr_program(n).compile(), btr3_abstraction(n)
        )
        assert result.holds
        path = worst_case_schedule(system, result.core)
        assert len(path) - 1 == result.worst_case_steps
        assert system.is_computation(path, require_maximal=False)
        assert path[-1] in result.core
