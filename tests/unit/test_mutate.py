"""Unit tests for the mutation engine, plus the mutation-kill experiment."""

import pytest

from repro.checker import check_stabilization
from repro.gcl.parser import parse_program
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state
from repro.transform import mutants

TOY = """
program toy
var x, y : mod 3
action a :: x != y --> x := y
action b :: x == y && x != 0 --> x := 0, y := 0
init x == 0 && y == 0
"""


class TestMutationOperators:
    @pytest.fixture
    def program(self):
        return parse_program(TOY)

    def test_generates_multiple_operator_kinds(self, program):
        descriptions = [m.description for m in mutants(program)]
        assert any(d.startswith("drop action") for d in descriptions)
        assert any(d.startswith("negate guard") for d in descriptions)
        assert any("->" in d for d in descriptions)

    def test_every_mutant_compiles(self, program):
        for mutant in mutants(program):
            mutant.program.compile()

    def test_mutants_differ_from_the_original(self, program):
        original = program.compile()
        changed = sum(
            1 for mutant in mutants(program) if mutant.program.compile() != original
        )
        # negating an unsatisfiable guard may produce an equivalent
        # automaton; the bulk must genuinely differ.
        assert changed >= len(mutants(program)) - 2

    def test_limit_caps_the_list(self, program):
        assert len(mutants(program, limit=3)) == 3

    def test_original_is_untouched(self, program):
        before = program.compile()
        mutants(program)
        assert program.compile() == before

    def test_single_action_program_has_no_drop_mutants(self):
        single = parse_program(
            "program one\nvar x : mod 2\naction a :: x != 0 --> x := 0\n"
            "init x == 0"
        )
        descriptions = [m.description for m in mutants(single)]
        assert not any(d.startswith("drop action") for d in descriptions)


class TestMutationKillRate:
    def test_checker_kills_most_dijkstra3_mutants(self):
        """Mutation adequacy in both directions: the checker is not
        vacuously accepting, and the protocol has little slack."""
        n = 3
        original = dijkstra_three_state(n)
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        generated = mutants(original)
        assert len(generated) >= 15
        killed = 0
        survivors = []
        for mutant in generated:
            result = check_stabilization(
                mutant.program.compile(),
                btr,
                alpha,
                stutter_insensitive=True,
                fairness="weak",
                compute_steps=False,
            )
            if result.holds:
                survivors.append(mutant.description)
            else:
                killed += 1
        assert killed / len(generated) >= 0.8, survivors

    def test_dropping_any_action_kills(self):
        n = 3
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        for mutant in mutants(dijkstra_three_state(n)):
            if not mutant.description.startswith("drop action"):
                continue
            result = check_stabilization(
                mutant.program.compile(), btr, alpha,
                stutter_insensitive=True, fairness="weak",
                compute_steps=False,
            )
            assert not result.holds, mutant.description
