"""Budget parsing (fractional forms included) and context plumbing."""

from __future__ import annotations

import pytest

from repro.kernel.shared import (
    MemoryContext,
    chunk_codes,
    parse_mem_budget,
    using_memory_budget,
)


class TestParseMemBudget:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            ("4K", 4 * 1024),
            ("512M", 512 * 1024**2),
            ("1G", 1024**3),
            ("1.5G", int(1.5 * 1024**3)),
            ("0.5T", 512 * 1024**3),
            (".25G", 256 * 1024**2),
            ("2.5k", 2560),
            (" 1 GiB ", 1024**3),
            ("3mb", 3 * 1024**2),
        ],
    )
    def test_accepts_fractional_and_suffixed_forms(self, text, expected):
        assert parse_mem_budget(text) == expected

    @pytest.mark.parametrize("text", ["0", "0.0G", ".0", "0K"])
    def test_rejects_zero_budgets(self, text):
        with pytest.raises(ValueError, match="must be positive"):
            parse_mem_budget(text)

    @pytest.mark.parametrize(
        "text", ["", "-1", "-1G", "G", "1.2.3M", "12X", "1.5 light-years"]
    )
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_mem_budget(text)

    def test_context_manager_rejects_nonpositive_int(self):
        with pytest.raises(ValueError, match="must be positive"):
            with using_memory_budget(0):
                pass
        with pytest.raises(ValueError, match="must be positive"):
            with using_memory_budget(-5):
                pass


class TestChunkCodes:
    def test_nonpositive_budget_raises_instead_of_clamping(self):
        with pytest.raises(ValueError, match="must be positive"):
            chunk_codes(0, 3, 4)
        with pytest.raises(ValueError, match="must be positive"):
            chunk_codes(-1024, 3, 4)

    def test_small_budget_floors_at_min_chunk(self):
        assert chunk_codes(1, 3, 4) == 1 << 12

    def test_large_budget_caps_at_max_chunk(self):
        assert chunk_codes(1 << 40, 1, 1) == 1 << 21


class TestContextFlags:
    def test_defaults_enable_all_three_axes(self):
        context = MemoryContext()
        assert context.pack_codes
        assert context.reuse_tables
        assert context.mmap_visited

    def test_using_memory_budget_threads_ablation_flags(self):
        with using_memory_budget(
            "1M", pack_codes=False, reuse_tables=False, mmap_visited=False
        ) as context:
            assert not context.pack_codes
            assert not context.reuse_tables
            assert not context.mmap_visited

    def test_omitted_flags_keep_defaults(self):
        with using_memory_budget("1M") as context:
            assert context.pack_codes
            assert context.reuse_tables
            assert context.mmap_visited
