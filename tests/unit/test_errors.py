"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    AbstractionError,
    CompositionError,
    GCLError,
    GCLEvalError,
    GCLParseError,
    RefinementError,
    ReproError,
    SchemaMismatchError,
    SimulationError,
    StateSpaceError,
    VerificationError,
)

ALL_ERRORS = [
    StateSpaceError,
    SchemaMismatchError,
    CompositionError,
    AbstractionError,
    RefinementError,
    VerificationError,
    GCLError,
    GCLParseError,
    GCLEvalError,
    SimulationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS)
    def test_everything_derives_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_gcl_errors_nest(self):
        assert issubclass(GCLParseError, GCLError)
        assert issubclass(GCLEvalError, GCLError)

    def test_catching_the_base_catches_all(self):
        with pytest.raises(ReproError):
            raise GCLParseError("boom")


class TestParseErrorLocations:
    def test_line_and_column_in_message(self):
        error = GCLParseError("unexpected token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_line_only(self):
        error = GCLParseError("oops", line=2)
        assert "line 2" in str(error)
        assert "column" not in str(error)

    def test_no_location(self):
        error = GCLParseError("oops")
        assert str(error) == "oops"
        assert error.line is None and error.column is None
