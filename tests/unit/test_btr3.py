"""Unit tests for the 3-state derivation (paper, Section 5)."""

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.core.composition import box_many
from repro.gcl.process import check_model_compliance
from repro.rings.btr import btr_program
from repro.rings.btr3 import (
    btr3_program,
    c2_program,
    dijkstra_three_state,
    w1_global_program,
    w1_local_program,
    w2_refined_program,
)
from repro.rings.mappings import btr3_abstraction
from repro.rings.tokens import count_tokens, state_with_tokens, tokens_in_state


class TestStructure:
    def test_c2_concrete_model_compliant(self):
        assert check_model_compliance(c2_program(4).processes) == []

    def test_dijkstra3_concrete_model_compliant(self):
        assert check_model_compliance(dijkstra_three_state(4).processes) == []

    def test_initial_states_encode_dt0(self):
        n = 4
        alpha = btr3_abstraction(n)
        schema_abstract = btr_program(n).schema()
        for state in c2_program(n).initial_states():
            assert tokens_in_state(schema_abstract, alpha(state)) == ("dt.0",)

    def test_three_initial_rotations(self):
        assert len(list(dijkstra_three_state(4).initial_states())) == 3


class TestMappingProperties:
    @pytest.fixture
    def alpha(self):
        return btr3_abstraction(4)

    def test_total(self, alpha):
        assert alpha.check_total()

    def test_zero_token_encodings_exist(self, alpha):
        """Unlike the 4-state encoding, uniform counter assignments
        encode the zero-token state — which is why W1'' is a genuine
        wrapper here rather than vacuous."""
        schema = btr_program(4).schema()
        zero = [
            state
            for state in alpha.concrete_schema.states()
            if count_tokens(schema, alpha(state)) == 0
        ]
        assert len(zero) == 3  # exactly the three uniform assignments
        assert all(len(set(state)) == 1 for state in zero)

    def test_colocated_tokens_are_representable(self, alpha):
        """Unlike the 4-state encoding, W2' is NOT vacuous here."""
        schema = btr_program(4).schema()
        found = False
        for state in alpha.concrete_schema.states():
            tokens = tokens_in_state(schema, alpha(state))
            positions = [flag.split(".")[1] for flag in tokens]
            if len(set(positions)) < len(positions):
                found = True
                break
        assert found


class TestLegitimateBehaviour:
    def test_btr3_init_refines_btr(self):
        n = 4
        result = check_init_refinement(
            btr3_program(n).compile(), btr_program(n).compile(), btr3_abstraction(n)
        )
        assert result.holds, result.format()

    def test_c2_init_refines_btr(self):
        n = 4
        result = check_init_refinement(
            c2_program(n).compile(), btr_program(n).compile(), btr3_abstraction(n)
        )
        assert result.holds, result.format()

    def test_dijkstra3_init_refines_btr(self):
        n = 4
        result = check_init_refinement(
            dijkstra_three_state(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
        )
        assert result.holds, result.format()


class TestWrapperRefinements:
    def test_w1_local_is_not_an_everywhere_refinement_of_w1_global(self):
        """Paper, Section 5.1: 'W1'' is enabled in some states where
        the abstract W1 is not, and hence, is not an everywhere
        refinement.'  Verified mechanically."""
        n = 4
        local = w1_local_program(n).compile()
        global_ = w1_global_program(n).compile()
        result = check_everywhere_refinement(
            local, global_, open_systems=True
        )
        assert not result.holds

    @pytest.mark.parametrize("builder", [w1_global_program, w1_local_program])
    def test_w1_is_harmless_in_single_token_states(self, builder):
        """Both wrapper variants may fire in a single-token state (the
        token sitting at the top), but there the action's image is an
        exact BTR transition — the wrapper never corrupts legitimate
        behaviour."""
        n = 4
        system = builder(n).compile()
        alpha = btr3_abstraction(n)
        btr = btr_program(n).compile()
        schema = btr.schema
        for source, target in system.transitions():
            if count_tokens(schema, alpha(source)) == 1:
                assert btr.has_transition(alpha(source), alpha(target))

    def test_w2_refined_cancels_both_tokens(self):
        n = 4
        system = w2_refined_program(n).compile()
        alpha = btr3_abstraction(n)
        schema = btr_program(n).schema()
        for source, target in system.transitions():
            before = tokens_in_state(schema, alpha(source))
            after = tokens_in_state(schema, alpha(target))
            assert len(after) == len(before) - 2

    def test_wrappers_have_no_initial_states(self):
        assert w1_local_program(3).compile().initial == frozenset()
        assert w2_refined_program(3).compile().initial == frozenset()


class TestLemma9AndTheorem11:
    @pytest.mark.parametrize("n", [3, 4])
    def test_lemma9_under_strong_fairness(self, n):
        btr = btr_program(n).compile()
        composite = box_many(
            [
                btr3_program(n).compile(),
                w1_local_program(n).compile(),
                w2_refined_program(n).compile(),
            ],
            name="BTR3[]W1''[]W2'",
        )
        result = check_stabilization(
            composite, btr, btr3_abstraction(n), fairness="strong",
            compute_steps=False,
        )
        assert result.holds, result.format()

    def test_lemma10_literal_reading_fails(self):
        """The reproduction's finding: read literally over the 3-state
        space, [C2[]W1''[]W2' <= BTR3[]W1''[]W2'] does not hold — C2's
        dropped enforcement writes reach states the abstract composite
        cannot (see EXPERIMENTS.md E09)."""
        n = 4
        w1 = w1_local_program(n).compile()
        w2 = w2_refined_program(n).compile()
        abstract = box_many([btr3_program(n).compile(), w1, w2])
        concrete = box_many([c2_program(n).compile(), w1, w2])
        assert not check_convergence_refinement(concrete, abstract).holds

    @pytest.mark.parametrize("n", [3, 4])
    def test_theorem11_composite_under_strong_fairness(self, n):
        btr = btr_program(n).compile()
        composite = box_many(
            [
                c2_program(n).compile(),
                w1_local_program(n).compile(),
                w2_refined_program(n).compile(),
            ],
            name="C2[]W1''[]W2'",
        )
        result = check_stabilization(
            composite, btr, btr3_abstraction(n), fairness="strong",
            compute_steps=False,
        )
        assert result.holds, result.format()

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_dijkstra3_stabilizes_under_unfair_daemon(self, n):
        """The merged system needs no fairness at all — Dijkstra's
        original claim, recovered mechanically."""
        result = check_stabilization(
            dijkstra_three_state(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            fairness="none",
        )
        assert result.holds, result.format()
        assert result.worst_case_steps is not None

    def test_merged_top_guard_differs_from_plain_union(self):
        """The paper's final listing is an optimization, not the raw
        union: the union has strictly more transitions."""
        n = 4
        union = box_many(
            [
                c2_program(n).compile(),
                w1_local_program(n).compile(),
                w2_refined_program(n).compile(),
            ]
        )
        merged = dijkstra_three_state(n).compile()
        assert set(merged.transitions()) != set(union.transitions())
