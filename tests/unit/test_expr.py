"""Unit tests for the expression AST."""

import pytest

from repro.core.errors import GCLEvalError
from repro.gcl.expr import (
    Add,
    AddMod,
    And,
    BigAnd,
    BigOr,
    Const,
    Eq,
    FALSE,
    Ge,
    Gt,
    Implies,
    Ite,
    Le,
    Lt,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Sub,
    SubMod,
    TRUE,
    Var,
)

ENV = {"x": 2, "y": 5, "p": True, "q": False}


class TestAtoms:
    def test_var_reads_environment(self):
        assert Var("x").eval(ENV) == 2

    def test_unbound_variable_raises(self):
        with pytest.raises(GCLEvalError):
            Var("nope").eval(ENV)

    def test_var_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const(self):
        assert Const(7).eval(ENV) == 7
        assert TRUE.eval(ENV) is True
        assert FALSE.eval(ENV) is False

    def test_const_rendering(self):
        assert Const(True).render() == "true"
        assert Const(False).render() == "false"
        assert Const(3).render() == "3"


class TestBooleans:
    def test_not(self):
        assert Not(Var("q")).eval(ENV) is True

    def test_not_requires_bool(self):
        with pytest.raises(GCLEvalError):
            Not(Var("x")).eval(ENV)

    def test_and_or(self):
        assert And(Var("p"), Not(Var("q"))).eval(ENV) is True
        assert Or(Var("q"), Var("q")).eval(ENV) is False

    def test_and_short_circuits_value_only(self):
        assert And(FALSE, TRUE).eval(ENV) is False

    def test_implies_truth_table(self):
        assert Implies(FALSE, FALSE).eval(ENV) is True
        assert Implies(TRUE, FALSE).eval(ENV) is False
        assert Implies(TRUE, TRUE).eval(ENV) is True

    def test_boolean_ops_reject_ints(self):
        with pytest.raises(GCLEvalError):
            And(Var("x"), TRUE).eval(ENV)


class TestComparisons:
    def test_equality_any_type(self):
        assert Eq(Var("x"), Const(2)).eval(ENV) is True
        assert Ne(Var("p"), Var("q")).eval(ENV) is True
        # Equality follows Python semantics, where True == 1.
        assert Eq(Const(True), Const(1)).eval(ENV) is True

    def test_orderings(self):
        assert Lt(Var("x"), Var("y")).eval(ENV) is True
        assert Le(Const(5), Var("y")).eval(ENV) is True
        assert Gt(Var("x"), Var("y")).eval(ENV) is False
        assert Ge(Var("y"), Const(5)).eval(ENV) is True

    def test_ordering_rejects_bool(self):
        with pytest.raises(GCLEvalError):
            Lt(Var("p"), Const(1)).eval(ENV)


class TestArithmetic:
    def test_add_sub_mul(self):
        assert Add(Var("x"), Var("y")).eval(ENV) == 7
        assert Sub(Var("x"), Var("y")).eval(ENV) == -3
        assert Mul(Var("x"), Var("y")).eval(ENV) == 10

    def test_mod_follows_python_semantics(self):
        assert Mod(Const(-1), Const(3)).eval(ENV) == 2

    def test_mod_by_zero_raises(self):
        with pytest.raises(GCLEvalError):
            Mod(Var("x"), Const(0)).eval(ENV)

    def test_arith_rejects_bool(self):
        with pytest.raises(GCLEvalError):
            Add(Var("p"), Const(1)).eval(ENV)


class TestModularOperators:
    def test_addmod_wraps(self):
        assert AddMod(Const(2), Const(2), 3).eval(ENV) == 1

    def test_submod_wraps(self):
        assert SubMod(Const(0), Const(1), 3).eval(ENV) == 2

    def test_modulus_must_be_positive(self):
        with pytest.raises(ValueError):
            AddMod(TRUE, TRUE, 0)

    def test_free_variables(self):
        expr = AddMod(Var("a"), Var("b"), 3)
        assert expr.free_variables() == {"a", "b"}


class TestIte:
    def test_selects_branch(self):
        expr = Ite(Var("p"), Var("x"), Var("y"))
        assert expr.eval(ENV) == 2
        assert Ite(Var("q"), Var("x"), Var("y")).eval(ENV) == 5

    def test_condition_must_be_boolean(self):
        with pytest.raises(GCLEvalError):
            Ite(Var("x"), TRUE, FALSE).eval(ENV)

    def test_free_variables_cover_all_parts(self):
        expr = Ite(Var("p"), Var("x"), Var("y"))
        assert expr.free_variables() == {"p", "x", "y"}


class TestBigOps:
    def test_bigand_empty_is_true(self):
        assert BigAnd().eval(ENV) is True

    def test_bigor_empty_is_false(self):
        assert BigOr().eval(ENV) is False

    def test_bigand_conjunction(self):
        assert BigAnd(Var("p"), Not(Var("q")), TRUE).eval(ENV) is True
        assert BigAnd(Var("p"), Var("q")).eval(ENV) is False

    def test_bigor_disjunction(self):
        assert BigOr(Var("q"), Var("p")).eval(ENV) is True


class TestStructuralEquality:
    def test_equal_trees(self):
        assert Add(Var("x"), Const(1)) == Add(Var("x"), Const(1))
        assert hash(Add(Var("x"), Const(1))) == hash(Add(Var("x"), Const(1)))

    def test_different_node_types_unequal(self):
        assert Add(Var("x"), Const(1)) != Sub(Var("x"), Const(1))

    def test_render_roundtrips_through_parser(self):
        from repro.gcl.parser import parse_expression

        expr = Ite(
            Eq(Var("x"), Const(1)),
            AddMod(Var("y"), Const(1), 3),
            Mod(Var("y"), Const(2)),
        )
        reparsed = parse_expression(expr.render())
        for env in ({"x": 1, "y": 2}, {"x": 0, "y": 5}):
            assert expr.eval(env) == reparsed.eval(env)
