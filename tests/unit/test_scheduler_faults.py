"""Unit tests for schedulers and fault injectors."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.gcl.action import GuardedAction
from repro.gcl.expr import Const, Var
from repro.gcl.parser import parse_program
from repro.rings.btr3 import dijkstra_three_state
from repro.rings.topology import Ring
from repro.simulation.faults import (
    CorruptEverything,
    CorruptVariables,
    FaultSchedule,
)
from repro.simulation.metrics import three_state_tokens
from repro.simulation.runner import execute
from repro.simulation.scheduler import (
    BiasedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def actions(*names):
    return [GuardedAction(name, Const(True), {"x": Const(0)}) for name in names]


class TestRandomScheduler:
    def test_covers_all_choices_eventually(self):
        scheduler = RandomScheduler()
        pool = actions("a", "b", "c")
        rng = random.Random(0)
        seen = {scheduler.choose(pool, {}, rng).name for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_reproducible_with_seed(self):
        pool = actions("a", "b", "c")
        picks1 = [RandomScheduler().choose(pool, {}, random.Random(7)).name
                  for _ in range(1)]
        picks2 = [RandomScheduler().choose(pool, {}, random.Random(7)).name
                  for _ in range(1)]
        assert picks1 == picks2


class TestRoundRobinScheduler:
    def test_cycles_through_positions(self):
        scheduler = RoundRobinScheduler()
        pool = actions("a", "b")
        rng = random.Random(0)
        names = [scheduler.choose(pool, {}, rng).name for _ in range(4)]
        assert names == ["a", "b", "a", "b"]

    def test_reset_restarts_cursor(self):
        scheduler = RoundRobinScheduler()
        pool = actions("a", "b")
        rng = random.Random(0)
        scheduler.choose(pool, {}, rng)
        scheduler.reset()
        assert scheduler.choose(pool, {}, rng).name == "a"


class TestBiasedScheduler:
    def test_full_bias_restricts_to_preferred(self):
        scheduler = BiasedScheduler(lambda name: name == "b", bias=1.0)
        pool = actions("a", "b")
        rng = random.Random(0)
        assert all(
            scheduler.choose(pool, {}, rng).name == "b" for _ in range(20)
        )

    def test_zero_bias_is_uniform(self):
        scheduler = BiasedScheduler(lambda name: name == "b", bias=0.0)
        pool = actions("a", "b")
        rng = random.Random(0)
        seen = {scheduler.choose(pool, {}, rng).name for _ in range(50)}
        assert seen == {"a", "b"}

    def test_falls_back_when_no_preferred_enabled(self):
        scheduler = BiasedScheduler(lambda name: name == "zz", bias=1.0)
        pool = actions("a")
        assert scheduler.choose(pool, {}, random.Random(0)).name == "a"

    def test_bias_range_validated(self):
        with pytest.raises(ValueError):
            BiasedScheduler(lambda name: True, bias=1.5)


class TestGreedyScheduler:
    def test_maximizes_score_of_effect(self):
        low = GuardedAction("low", Const(True), {"x": Const(1)})
        high = GuardedAction("high", Const(True), {"x": Const(5)})
        scheduler = GreedyScheduler(lambda env: env["x"])
        chosen = scheduler.choose([low, high], {"x": 0}, random.Random(0))
        assert chosen.name == "high"

    def test_ties_broken_among_best_only(self):
        a = GuardedAction("a", Const(True), {"x": Const(5)})
        b = GuardedAction("b", Const(True), {"x": Const(5)})
        c = GuardedAction("c", Const(True), {"x": Const(1)})
        scheduler = GreedyScheduler(lambda env: env["x"])
        rng = random.Random(0)
        names = {scheduler.choose([a, b, c], {"x": 0}, rng).name for _ in range(30)}
        assert names == {"a", "b"}


class TestFaultInjectors:
    @pytest.fixture
    def program(self):
        return dijkstra_three_state(5)

    def test_corrupt_variables_changes_exactly_count(self, program):
        injector = CorruptVariables(2)
        env = program.env_of(next(program.initial_states()))
        corrupted, description = injector.inject(program, env, random.Random(3))
        assert "corrupt" in description
        assert set(corrupted) == set(env)
        # at most 2 entries differ (random redraw may coincide).
        assert sum(1 for k in env if env[k] != corrupted[k]) <= 2

    def test_corrupt_values_stay_in_domain(self, program):
        injector = CorruptEverything()
        env = program.env_of(next(program.initial_states()))
        corrupted, _ = injector.inject(program, env, random.Random(5))
        program.state_of(corrupted)  # raises if out of domain

    def test_corrupt_count_validation(self):
        with pytest.raises(ValueError):
            CorruptVariables(0)

    def test_too_many_variables_raises(self, program):
        injector = CorruptVariables(100)
        env = program.env_of(next(program.initial_states()))
        with pytest.raises(SimulationError):
            injector.inject(program, env, random.Random(0))


TWO_COUNTERS = """
program twocounters
var x : 0..9
var y : 0..9
action incx :: x < 9 --> x := x + 1
action incy :: y < 9 --> y := y + 1
init x == 0 && y == 0
"""


class TestAdversarialSchedulers:
    def test_full_bias_starves_unpreferred_over_a_whole_run(self):
        # The starvation daemon: with bias 1.0 the unpreferred action
        # never fires while any preferred one is enabled, so y stays 0
        # until x saturates.
        program = parse_program(TWO_COUNTERS)
        scheduler = BiasedScheduler(lambda name: name == "incx", bias=1.0)
        outcome = execute(program, 9, scheduler=scheduler, seed=0)
        assert outcome.trace.final() == {"x": 9, "y": 0}

    def test_partial_bias_lets_the_starved_action_through(self):
        program = parse_program(TWO_COUNTERS)
        scheduler = BiasedScheduler(lambda name: name == "incx", bias=0.5)
        outcome = execute(program, 18, scheduler=scheduler, seed=0)
        assert outcome.trace.final()["y"] > 0

    def test_greedy_picks_token_maximizing_ring_action(self):
        # The worst-case daemon of the campaign grid: on the 3-state
        # ring it always fires an action whose successor has at least
        # as many tokens as any alternative.
        n = 4
        program = dijkstra_three_state(n)
        ring = Ring(n)
        score = lambda env: len(three_state_tokens(ring, env))
        scheduler = GreedyScheduler(score=score)
        env = program.env_of(next(program.initial_states()))
        # Perturb into a multi-token state deterministically.
        env, _ = CorruptEverything().inject(program, env, random.Random(2))
        enabled = [a for a in program.actions if a.enabled(env)]
        chosen = scheduler.choose(enabled, env, random.Random(0))
        best = max(score(a.execute(env)) for a in enabled)
        assert score(chosen.execute(env)) == best

    def test_greedy_is_deterministic_up_to_rng(self):
        program = parse_program(TWO_COUNTERS)
        scheduler = GreedyScheduler(score=lambda env: env["x"] - env["y"])
        outcome = execute(program, 9, scheduler=scheduler, seed=5)
        # Maximizing x - y is the same starvation schedule.
        assert outcome.trace.final() == {"x": 9, "y": 0}


class TestInjectorValidation:
    @pytest.fixture
    def program(self):
        return dijkstra_three_state(3)

    def test_validate_accepts_feasible_count(self, program):
        CorruptVariables(2).validate(program)  # must not raise

    def test_validate_rejects_oversized_count_before_any_step(self, program):
        with pytest.raises(SimulationError, match="cannot corrupt"):
            CorruptVariables(100).validate(program)

    def test_oversized_count_with_clamp_warns_and_corrupts_all(self, program):
        injector = CorruptVariables(100, clamp=True)
        injector.validate(program)  # clamping: construction-time OK
        env = program.env_of(next(program.initial_states()))
        with pytest.warns(UserWarning, match="clamp"):
            corrupted, _ = injector.inject(program, env, random.Random(0))
        assert set(corrupted) == set(env)
        program.state_of(corrupted)  # still in-domain

    def test_execute_fails_fast_on_infeasible_injector(self, program):
        # The engine calls validate() before the first step: the run
        # dies immediately, not at the scheduled fault step.
        with pytest.raises(SimulationError, match="cannot corrupt"):
            execute(
                program, 100, seed=0,
                faults=FaultSchedule([50], CorruptVariables(100)),
            )


class TestInjectorDomainProperty:
    """Property: injectors only ever produce in-domain values."""

    def test_seeded_sweep_stays_in_domain(self):
        program = dijkstra_three_state(4)
        env = program.env_of(next(program.initial_states()))
        for seed in range(50):
            rng = random.Random(seed)
            for injector in (
                CorruptVariables(1),
                CorruptVariables(3),
                CorruptEverything(),
            ):
                corrupted, _ = injector.inject(program, dict(env), rng)
                program.state_of(corrupted)  # raises if out of domain

    def test_hypothesis_sweep_stays_in_domain(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")
        program = dijkstra_three_state(4)
        env = program.env_of(next(program.initial_states()))

        @hypothesis.settings(max_examples=60, deadline=None)
        @hypothesis.given(
            seed=st.integers(min_value=0, max_value=2**32 - 1),
            count=st.integers(min_value=1, max_value=8),
        )
        def check(seed, count):
            injector = CorruptVariables(count, clamp=True)
            corrupted, _ = injector.inject(
                program, dict(env), random.Random(seed)
            )
            program.state_of(corrupted)  # raises if out of domain

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)  # clamp warnings
            check()


class TestFaultSchedule:
    def test_due_steps(self):
        schedule = FaultSchedule([0, 5], CorruptVariables(1))
        assert schedule.due(0) and schedule.due(5)
        assert not schedule.due(1)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule([-1], CorruptVariables(1))
