"""Unit tests for schedulers and fault injectors."""

import random

import pytest

from repro.core.errors import SimulationError
from repro.gcl.action import GuardedAction
from repro.gcl.expr import Const, Var
from repro.rings.btr3 import dijkstra_three_state
from repro.simulation.faults import (
    CorruptEverything,
    CorruptVariables,
    FaultSchedule,
)
from repro.simulation.scheduler import (
    BiasedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def actions(*names):
    return [GuardedAction(name, Const(True), {"x": Const(0)}) for name in names]


class TestRandomScheduler:
    def test_covers_all_choices_eventually(self):
        scheduler = RandomScheduler()
        pool = actions("a", "b", "c")
        rng = random.Random(0)
        seen = {scheduler.choose(pool, {}, rng).name for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_reproducible_with_seed(self):
        pool = actions("a", "b", "c")
        picks1 = [RandomScheduler().choose(pool, {}, random.Random(7)).name
                  for _ in range(1)]
        picks2 = [RandomScheduler().choose(pool, {}, random.Random(7)).name
                  for _ in range(1)]
        assert picks1 == picks2


class TestRoundRobinScheduler:
    def test_cycles_through_positions(self):
        scheduler = RoundRobinScheduler()
        pool = actions("a", "b")
        rng = random.Random(0)
        names = [scheduler.choose(pool, {}, rng).name for _ in range(4)]
        assert names == ["a", "b", "a", "b"]

    def test_reset_restarts_cursor(self):
        scheduler = RoundRobinScheduler()
        pool = actions("a", "b")
        rng = random.Random(0)
        scheduler.choose(pool, {}, rng)
        scheduler.reset()
        assert scheduler.choose(pool, {}, rng).name == "a"


class TestBiasedScheduler:
    def test_full_bias_restricts_to_preferred(self):
        scheduler = BiasedScheduler(lambda name: name == "b", bias=1.0)
        pool = actions("a", "b")
        rng = random.Random(0)
        assert all(
            scheduler.choose(pool, {}, rng).name == "b" for _ in range(20)
        )

    def test_zero_bias_is_uniform(self):
        scheduler = BiasedScheduler(lambda name: name == "b", bias=0.0)
        pool = actions("a", "b")
        rng = random.Random(0)
        seen = {scheduler.choose(pool, {}, rng).name for _ in range(50)}
        assert seen == {"a", "b"}

    def test_falls_back_when_no_preferred_enabled(self):
        scheduler = BiasedScheduler(lambda name: name == "zz", bias=1.0)
        pool = actions("a")
        assert scheduler.choose(pool, {}, random.Random(0)).name == "a"

    def test_bias_range_validated(self):
        with pytest.raises(ValueError):
            BiasedScheduler(lambda name: True, bias=1.5)


class TestGreedyScheduler:
    def test_maximizes_score_of_effect(self):
        low = GuardedAction("low", Const(True), {"x": Const(1)})
        high = GuardedAction("high", Const(True), {"x": Const(5)})
        scheduler = GreedyScheduler(lambda env: env["x"])
        chosen = scheduler.choose([low, high], {"x": 0}, random.Random(0))
        assert chosen.name == "high"

    def test_ties_broken_among_best_only(self):
        a = GuardedAction("a", Const(True), {"x": Const(5)})
        b = GuardedAction("b", Const(True), {"x": Const(5)})
        c = GuardedAction("c", Const(True), {"x": Const(1)})
        scheduler = GreedyScheduler(lambda env: env["x"])
        rng = random.Random(0)
        names = {scheduler.choose([a, b, c], {"x": 0}, rng).name for _ in range(30)}
        assert names == {"a", "b"}


class TestFaultInjectors:
    @pytest.fixture
    def program(self):
        return dijkstra_three_state(5)

    def test_corrupt_variables_changes_exactly_count(self, program):
        injector = CorruptVariables(2)
        env = program.env_of(next(program.initial_states()))
        corrupted, description = injector.inject(program, env, random.Random(3))
        assert "corrupt" in description
        assert set(corrupted) == set(env)
        # at most 2 entries differ (random redraw may coincide).
        assert sum(1 for k in env if env[k] != corrupted[k]) <= 2

    def test_corrupt_values_stay_in_domain(self, program):
        injector = CorruptEverything()
        env = program.env_of(next(program.initial_states()))
        corrupted, _ = injector.inject(program, env, random.Random(5))
        program.state_of(corrupted)  # raises if out of domain

    def test_corrupt_count_validation(self):
        with pytest.raises(ValueError):
            CorruptVariables(0)

    def test_too_many_variables_raises(self, program):
        injector = CorruptVariables(100)
        env = program.env_of(next(program.initial_states()))
        with pytest.raises(SimulationError):
            injector.inject(program, env, random.Random(0))


class TestFaultSchedule:
    def test_due_steps(self):
        schedule = FaultSchedule([0, 5], CorruptVariables(1))
        assert schedule.due(0) and schedule.due(5)
        assert not schedule.due(1)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule([-1], CorruptVariables(1))
