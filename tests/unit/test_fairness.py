"""Unit tests for the strong-fairness trap analysis."""

import pytest

from repro.checker.fairness import find_fair_trap, has_fair_divergence
from repro.core.state import StateSchema
from repro.core.system import System


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(6))})


def sys_of(schema, labelled_pairs, name="g"):
    """labelled_pairs: list of (a, b, action)."""
    transitions = [((a,), (b,)) for a, b, _ in labelled_pairs]
    labels = {}
    for a, b, action in labelled_pairs:
        labels.setdefault(((a,), (b,)), set()).add(action)
    return System(schema, transitions, initial=[], name=name, labels=labels)


class TestFairTrap:
    def test_closed_cycle_is_a_trap(self, schema):
        system = sys_of(schema, [(0, 1, "go"), (1, 0, "back")])
        trap = find_fair_trap(system, [(0,), (1,)])
        assert trap == frozenset({(0,), (1,)})

    def test_cycle_with_mandatory_exit_is_not_a_trap(self, schema):
        # "exit" is enabled at 0 and never fires inside the cycle, so a
        # strongly fair run cannot visit 0 infinitely often.
        system = sys_of(
            schema, [(0, 1, "go"), (1, 0, "back"), (0, 2, "exit")]
        )
        assert find_fair_trap(system, [(0,), (1,)]) is None

    def test_exit_with_internal_alternative_keeps_the_trap(self, schema):
        # Action "go" has both an exiting and an internal transition;
        # fairness for "go" is satisfiable inside the region.
        system = sys_of(
            schema,
            [(0, 1, "go"), (0, 2, "go"), (1, 0, "back")],
        )
        assert find_fair_trap(system, [(0,), (1,)]) == frozenset({(0,), (1,)})

    def test_nested_shrinking(self, schema):
        # Outer cycle 0-1-2 with an exit at 2; inner cycle 0-1 exists
        # after removing 2, and has no unmet obligations.
        system = sys_of(
            schema,
            [
                (0, 1, "a"),
                (1, 0, "b"),
                (1, 2, "c"),
                (2, 0, "d"),
                (2, 3, "exit"),
            ],
        )
        trap = find_fair_trap(system, [(0,), (1,), (2,)])
        # 2 must be visited finitely often ("exit" never fires inside),
        # but the 0-1 sub-cycle survives only if action "c" (enabled at
        # 1) can fire inside {0,1} -- it cannot, so no trap remains.
        assert trap is None

    def test_self_loop_with_alternative_is_not_a_trap(self, schema):
        # A state whose only internal move is its own self-loop, while
        # another enabled action must leave: fair runs leave.
        system = sys_of(schema, [(0, 0, "spin"), (0, 1, "exit")])
        assert find_fair_trap(system, [(0,)]) is None

    def test_pure_self_loop_is_a_trap(self, schema):
        system = sys_of(schema, [(0, 0, "spin")])
        assert find_fair_trap(system, [(0,)]) == frozenset({(0,)})

    def test_unlabelled_transitions_are_private_actions(self, schema):
        system = System(
            schema, [((0,), (1,)), ((1,), (0,))], initial=[], name="anon"
        )
        assert has_fair_divergence(system, [(0,), (1,)])

    def test_empty_region(self, schema):
        system = sys_of(schema, [(0, 1, "a")])
        assert find_fair_trap(system, []) is None

    def test_region_without_cycles(self, schema):
        system = sys_of(schema, [(0, 1, "a"), (1, 2, "b")])
        assert find_fair_trap(system, [(0,), (1,), (2,)]) is None
