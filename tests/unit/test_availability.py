"""Unit tests for the availability experiment."""

import random

import pytest

from repro.rings import dijkstra_three_state
from repro.simulation import availability_curve, availability_trial


class TestAvailabilityTrial:
    def test_perfect_without_faults(self):
        value = availability_trial(
            dijkstra_three_state(6), "three", 6, 0.0, 300, random.Random(0)
        )
        assert value == 1.0

    def test_degrades_under_heavy_faults(self):
        calm = availability_trial(
            dijkstra_three_state(6), "three", 6, 0.0, 400, random.Random(1)
        )
        noisy = availability_trial(
            dijkstra_three_state(6), "three", 6, 0.3, 400, random.Random(1)
        )
        assert noisy < calm

    def test_value_is_a_fraction(self):
        value = availability_trial(
            dijkstra_three_state(5), "three", 5, 0.1, 200, random.Random(2)
        )
        assert 0.0 <= value <= 1.0

    def test_reproducible_given_seed(self):
        values = {
            availability_trial(
                dijkstra_three_state(5), "three", 5, 0.1, 200, random.Random(7)
            )
            for _ in range(3)
        }
        assert len(values) == 1

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            availability_trial(
                dijkstra_three_state(5), "three", 5, 1.5, 10, random.Random(0)
            )


class TestAvailabilityCurve:
    def test_rows_cover_the_grid(self):
        rows = availability_curve(
            6,
            (0.0, 0.2),
            steps=150,
            trials=2,
            protocols={"d3": (dijkstra_three_state, "three")},
        )
        assert len(rows) == 2
        assert rows[0]["availability"] == 1.0
        assert rows[1]["availability"] < 1.0
