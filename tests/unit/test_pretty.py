"""Unit tests for the GCL pretty-printer (incl. round-tripping)."""

import pytest

from repro.gcl.parser import parse_program
from repro.gcl.pretty import render_actions, render_program
from repro.rings import btr3_program, c2_program, dijkstra_three_state


SOURCE = """
program demo
var x, y : mod 3
var flag : bool

process left owns x reads y
process right owns flag, y reads x

action bump of left :: x != y --> x := (x + 1) % 3
action sync of right :: flag --> flag := false, y := x

init x == 0 && y == 0 && !flag
"""


class TestRenderProgram:
    def test_roundtrip_compiles_to_equal_automaton(self):
        original = parse_program(SOURCE)
        rendered = render_program(original)
        reparsed = parse_program(rendered)
        assert original.compile() == reparsed.compile()

    def test_groups_variables_with_equal_domains(self):
        rendered = render_program(parse_program(SOURCE))
        assert "var x, y : mod 3" in rendered

    def test_mentions_processes_and_ownership(self):
        rendered = render_program(parse_program(SOURCE))
        assert "process left owns x reads y" in rendered

    def test_ring_programs_roundtrip(self):
        for builder in (c2_program, dijkstra_three_state):
            program = builder(3)
            reparsed = parse_program(render_program(program))
            assert program.compile() == reparsed.compile()

    def test_btr3_roundtrip_without_processes(self):
        program = btr3_program(3)
        reparsed = parse_program(render_program(program))
        assert program.compile() == reparsed.compile()


class TestRenderActions:
    def test_one_line_per_action(self):
        program = parse_program(SOURCE)
        lines = render_actions(program).splitlines()
        assert len(lines) == len(program.actions)
        assert any("bump" in line for line in lines)

    def test_empty_program(self):
        program = parse_program("program empty\nvar x : bool")
        assert render_actions(program) == ""
