"""Unit tests for the deterministic chaos harness.

The invariants under test: fault plans round-trip through JSON and
reject unknown fields loudly (a typoed selector must not silently
disable a fault); matching is exact over (phase, task, attempt) with
wildcards; the file-level corruption hooks hit exactly the selected
store/append; and activation is scoped by ``using_chaos``.
"""

from __future__ import annotations

import json

import pytest

from repro.resilience import (
    ChaosPlanError,
    FaultAction,
    FaultPlan,
    active_plan,
    load_plan,
    using_chaos,
)
from repro.resilience import chaos


class TestPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultAction(kind="kill-worker", task=0),
                FaultAction(kind="raise-memory", engine="vector", at_states=5),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_fault_field_is_rejected(self):
        with pytest.raises(ChaosPlanError, match="unknown fault field"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "kill-worker", "tsak": 0}]}
            )

    def test_unknown_plan_field_is_rejected(self):
        with pytest.raises(ChaosPlanError, match="unknown plan field"):
            FaultPlan.from_dict({"seed": 0, "fault": []})

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ChaosPlanError, match="unknown fault kind"):
            FaultAction(kind="set-on-fire")

    def test_missing_kind_is_rejected(self):
        with pytest.raises(ChaosPlanError, match="missing its 'kind'"):
            FaultAction.from_dict({"task": 0})

    def test_invalid_json_is_rejected(self):
        with pytest.raises(ChaosPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ChaosPlanError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_selector_validation(self):
        with pytest.raises(ChaosPlanError):
            FaultAction(kind="kill-worker", task=1.5)
        with pytest.raises(ChaosPlanError):
            FaultAction(kind="delay-task", seconds=-1.0)
        with pytest.raises(ChaosPlanError):
            FaultAction(kind="corrupt-cache", index=-1)


class TestLoadPlan:
    def test_inline_json(self):
        plan = load_plan('{"seed": 3, "faults": []}')
        assert plan == FaultPlan(seed=3)

    def test_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"seed": 1, "faults": [{"kind": "kill-worker", "task": 2}]}
            ),
            encoding="utf-8",
        )
        plan = load_plan(str(path))
        assert plan.seed == 1
        assert plan.faults[0].task == 2

    def test_missing_file_is_a_plan_error(self, tmp_path):
        with pytest.raises(ChaosPlanError, match="cannot read fault plan"):
            load_plan(str(tmp_path / "absent.json"))


class TestMatching:
    def test_exact_and_wildcard_selectors(self):
        fault = FaultAction(kind="kill-worker", task=3, attempt=0, phase="f")
        assert fault.matches_task("f", 3, 0)
        assert not fault.matches_task("f", 3, 1)
        assert not fault.matches_task("f", 2, 0)
        assert not fault.matches_task("g", 3, 0)
        anywhere = FaultAction(kind="kill-worker", task="*", attempt="*")
        assert anywhere.matches_task("anything", 99, 7)


class TestActivation:
    def test_using_chaos_scopes_the_plan(self):
        plan = FaultPlan(seed=1)
        assert active_plan() is None
        with using_chaos(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_none_plan_is_a_passthrough(self):
        with using_chaos(None):
            assert active_plan() is None
            # Every hook must be inert without a plan.
            chaos.on_worker_task("f", 0, 0)
            chaos.engine_states("vector", 10**9)
            chaos.cache_stored("/nonexistent")
            chaos.checkpoint_appended("/nonexistent")

    def test_raise_memory_threshold(self):
        plan = FaultPlan(
            faults=(
                FaultAction(kind="raise-memory", engine="vector", at_states=10),
            )
        )
        with using_chaos(plan):
            chaos.engine_states("vector", 9)  # below threshold: no raise
            chaos.engine_states("packed", 99)  # other engine: no raise
            with pytest.raises(MemoryError, match="injected MemoryError"):
                chaos.engine_states("vector", 10)


class TestFileCorruption:
    def test_corrupt_cache_flips_one_byte_of_the_selected_store(
        self, tmp_path
    ):
        target = tmp_path / "entry.json"
        original = b'{"payload": {"holds": true}}'
        plan = FaultPlan(
            faults=(FaultAction(kind="corrupt-cache", index=1),)
        )
        with using_chaos(plan):
            target.write_bytes(original)
            chaos.cache_stored(target)  # store 0: not selected
            assert target.read_bytes() == original
            chaos.cache_stored(target)  # store 1: one byte flipped
            flipped = target.read_bytes()
        assert len(flipped) == len(original)
        assert flipped != original
        diffs = [i for i, (a, b) in enumerate(zip(original, flipped)) if a != b]
        assert len(diffs) == 1

    def test_truncate_checkpoint_halves_the_final_line(self, tmp_path):
        target = tmp_path / "ckpt.jsonl"
        lines = b'{"t": "meta"}\n{"t": "cell", "id": "abcdefgh"}\n'
        target.write_bytes(lines)
        plan = FaultPlan(
            faults=(FaultAction(kind="truncate-checkpoint", index=0),)
        )
        with using_chaos(plan):
            chaos.checkpoint_appended(target)
        data = target.read_bytes()
        assert data.startswith(b'{"t": "meta"}\n')
        assert not data.endswith(b"\n")
        tail = data.split(b"\n", 1)[1]
        with pytest.raises(json.JSONDecodeError):
            json.loads(tail)

    def test_counters_reset_at_context_boundary(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_bytes(b"0123456789")
        plan = FaultPlan(
            faults=(FaultAction(kind="corrupt-cache", index=0),)
        )
        with using_chaos(plan):
            chaos.cache_stored(target)
        corrupted_once = target.read_bytes()
        assert corrupted_once != b"0123456789"
        with using_chaos(plan):
            # A fresh context counts stores from zero again.
            chaos.cache_stored(target)
        assert target.read_bytes() == b"0123456789"
