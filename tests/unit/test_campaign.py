"""Unit tests for the resilient campaign engine.

The resilience contract under test: timeouts are recorded and the
sweep continues; crashes are retried with derived sub-seeds and then
recorded as ``error``; an interrupted campaign resumes from its
checkpoint without re-executing completed cells; budget-capped checks
degrade to ``partial`` instead of dying.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignConfig,
    CellResult,
    CellSpec,
    CellStatus,
    build_grid,
    derive_seed,
    execute_cell,
    grid_signature,
    run_campaign,
    summarize_campaign,
)
from repro.core.errors import SimulationError
from repro.obs import load_tagged_lines


def quick_config(**overrides):
    defaults = dict(steps=2000, deadline=30.0, retries=1, seed=7)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def stub_result(cell, status=CellStatus.CONVERGED):
    return CellResult(cell.cell_id(), status, 1, 0.001)


def stub_executor(cell, config):
    return stub_result(cell)


class TestGrid:
    def test_grid_is_deterministic_and_ordered(self):
        first = build_grid(seeds=2)
        second = build_grid(seeds=2)
        assert [c.cell_id() for c in first] == [c.cell_id() for c in second]
        assert grid_signature(first) == grid_signature(second)

    def test_check_cells_precede_their_simulations(self):
        cells = build_grid(
            systems=("dijkstra4",), sizes=(3,), seeds=1, with_check=True
        )
        assert cells[0].kind == "check"
        assert all(cell.kind == "simulate" for cell in cells[1:])

    def test_signature_is_order_sensitive(self):
        cells = build_grid(seeds=2)
        assert grid_signature(cells) != grid_signature(cells[::-1])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"systems": ("nope",)},
            {"schedulers": ("nope",)},
            {"injectors": ("nope",)},
            {"seeds": 0},
            {"sizes": (2,)},
        ],
    )
    def test_bad_axes_rejected_before_any_cell_runs(self, kwargs):
        with pytest.raises(SimulationError):
            build_grid(**kwargs)

    def test_derive_seed_is_deterministic_and_distinct(self):
        cell = "simulate:dijkstra4:n3:random:corrupt-all:s0"
        assert derive_seed(7, cell, 0) == derive_seed(7, cell, 0)
        # Different campaign seed, cell, or attempt: different stream.
        assert derive_seed(8, cell, 0) != derive_seed(7, cell, 0)
        assert derive_seed(7, cell + "x", 0) != derive_seed(7, cell, 0)
        assert derive_seed(7, cell, 1) != derive_seed(7, cell, 0)


class TestCellResultPayload:
    def test_round_trip(self):
        result = CellResult(
            "simulate:kstate:n4:random:corrupt-1:s2",
            CellStatus.DIVERGED, 2, 1.25, steps=500, seed=123,
            detail="suspected divergence", trace_path="/tmp/x.jsonl",
        )
        assert CellResult.from_payload(result.to_payload()) == result

    def test_minimal_round_trip(self):
        result = CellResult("check:btr:n3:-:-:s0", CellStatus.PARTIAL, 1, 0.5)
        assert CellResult.from_payload(result.to_payload()) == result

    def test_payload_is_tagged(self):
        payload = stub_result(CellSpec("simulate", "btr", 3)).to_payload()
        assert payload["t"] == "campaign-cell"


class TestExecuteCell:
    def test_simulation_cell_converges(self):
        cell = CellSpec("simulate", "dijkstra3", 3, "random", "corrupt-all", 0)
        result = execute_cell(cell, quick_config())
        assert result.status is CellStatus.CONVERGED
        assert result.attempts == 1
        assert result.seed == derive_seed(7, cell.cell_id(), 0)

    def test_timeout_is_a_recorded_outcome(self):
        cell = CellSpec("simulate", "dijkstra4", 3, "random", "corrupt-all", 0)
        config = quick_config(steps=10**7, deadline=1e-9)
        result = execute_cell(cell, config)
        assert result.status is CellStatus.TIMEOUT
        assert "deadline" in result.detail

    def test_check_cell_verifies(self):
        result = execute_cell(CellSpec("check", "dijkstra3", 3), quick_config())
        assert result.status is CellStatus.CONVERGED
        assert "verified" in result.detail

    def test_check_cell_reports_counterexample_as_diverged(self):
        # BTR is the deliberate non-stabilizing control.
        result = execute_cell(CellSpec("check", "btr", 3), quick_config())
        assert result.status is CellStatus.DIVERGED

    def test_check_cell_degrades_to_partial_under_budget(self):
        config = quick_config(state_budget=5)
        result = execute_cell(CellSpec("check", "dijkstra4", 3), config)
        assert result.status is CellStatus.PARTIAL
        assert "budget" in result.detail

    def test_crash_retries_then_errors(self, monkeypatch):
        attempts = []

        def boom(key):
            attempts.append(key)
            raise RuntimeError("injector exploded")

        monkeypatch.setattr("repro.campaign.engine.build_injector", boom)
        cell = CellSpec("simulate", "dijkstra4", 3, "random", "corrupt-all", 0)
        result = execute_cell(cell, quick_config(retries=2))
        assert result.status is CellStatus.ERROR
        assert result.attempts == 3 and len(attempts) == 3
        assert "injector exploded" in result.detail

    def test_crash_then_success_uses_fresh_subseed(self, monkeypatch):
        from repro.campaign import engine

        real = engine.build_injector
        calls = []

        def flaky(key):
            calls.append(key)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return real(key)

        monkeypatch.setattr(engine, "build_injector", flaky)
        cell = CellSpec("simulate", "dijkstra3", 3, "random", "corrupt-all", 0)
        result = execute_cell(cell, quick_config(retries=1))
        assert result.status is CellStatus.CONVERGED
        assert result.attempts == 2
        # The successful attempt ran on the attempt-1 derived sub-seed.
        assert result.seed == derive_seed(7, cell.cell_id(), 1)


class TestRunCampaign:
    def test_timeout_cell_does_not_stop_the_sweep(self):
        cells = [
            CellSpec("simulate", "dijkstra4", 3, "random", "corrupt-all", i)
            for i in range(2)
        ]
        config = quick_config(steps=10**7, deadline=1e-9)
        campaign = run_campaign(cells, config)
        assert [r.status for r in campaign.results] == [CellStatus.TIMEOUT] * 2
        assert campaign.executed == 2 and not campaign.interrupted

    def test_error_cell_is_isolated(self):
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=3)

        def executor(cell, config):
            if cell.seed_index == 1:
                return stub_result(cell, CellStatus.ERROR)
            return stub_result(cell)

        campaign = run_campaign(cells, quick_config(), executor=executor)
        assert campaign.executed == 3
        assert campaign.counts()[CellStatus.ERROR] == 1
        assert not campaign.ok

    def test_checkpoint_lines_are_written_incrementally(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=2)
        config = quick_config(checkpoint=checkpoint)
        run_campaign(cells, config, executor=stub_executor)
        meta = load_tagged_lines(checkpoint, "campaign-meta")
        rows = load_tagged_lines(checkpoint, "campaign-cell")
        assert meta[0]["grid"] == grid_signature(cells)
        assert [row["id"] for row in rows] == [c.cell_id() for c in cells]

    def test_interrupt_then_resume_skips_completed_cells(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4", "dijkstra3"), sizes=(3,),
                           seeds=2)
        config = quick_config(checkpoint=checkpoint)
        ran_first = []

        def interrupting(cell, config):
            if len(ran_first) == 2:
                raise KeyboardInterrupt
            ran_first.append(cell.cell_id())
            return stub_result(cell)

        first = run_campaign(cells, config, executor=interrupting)
        assert first.interrupted and first.executed == 2
        assert first.pending == len(cells) - 2

        ran_second = []

        def counting(cell, config):
            ran_second.append(cell.cell_id())
            return stub_result(cell)

        second = run_campaign(cells, config, resume=True, executor=counting)
        # Completed cells were NOT re-executed; the rest ran exactly once.
        assert set(ran_second).isdisjoint(ran_first)
        assert ran_second == [c.cell_id() for c in cells[2:]]
        assert second.skipped == 2 and second.executed == len(cells) - 2
        assert not second.interrupted and second.pending == 0
        assert len(second.results) == len(cells)

    def test_existing_checkpoint_requires_resume(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=1)
        config = quick_config(checkpoint=checkpoint)
        run_campaign(cells, config, executor=stub_executor)
        with pytest.raises(SimulationError, match="resume"):
            run_campaign(cells, config, executor=stub_executor)

    def test_resume_refuses_a_different_grid(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        config = quick_config(checkpoint=checkpoint)
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=1)
        run_campaign(cells, config, executor=stub_executor)
        other = build_grid(systems=("dijkstra3",), sizes=(3,), seeds=1)
        with pytest.raises(SimulationError, match="different grid"):
            run_campaign(other, config, resume=True, executor=stub_executor)

    def test_resume_without_existing_checkpoint_starts_fresh(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=1)
        config = quick_config(checkpoint=checkpoint)
        campaign = run_campaign(cells, config, resume=True,
                                executor=stub_executor)
        assert campaign.executed == len(cells) and campaign.skipped == 0

    def test_diverged_run_archives_trace(self, tmp_path):
        # A 0.0-probability-of-convergence setup is not available
        # deterministically, so force divergence via a tiny step budget
        # on the non-stabilizing control with a fixed master seed.
        cells = [CellSpec("simulate", "btr", 3, "round-robin", "corrupt-1", 0)]
        config = quick_config(steps=1, trace_dir=tmp_path / "traces")
        campaign = run_campaign(cells, config)
        result = campaign.results[0]
        if result.status is CellStatus.DIVERGED:
            assert result.trace_path is not None
            archived = load_tagged_lines(result.trace_path, "trace")
            assert archived, "archived trace must be tagged JSONL"
        else:  # the single corrupted step happened to restore legitimacy
            assert result.status is CellStatus.CONVERGED


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": 0},
            {"deadline": 0.0},
            {"retries": -1},
            {"fault_count": 0},
            {"state_budget": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            CampaignConfig(**kwargs)


class TestSummary:
    def test_table_groups_by_system_and_size(self):
        cells = build_grid(systems=("dijkstra4", "kstate"), sizes=(3,),
                           seeds=2)
        statuses = iter(
            [CellStatus.CONVERGED, CellStatus.TIMEOUT,
             CellStatus.DIVERGED, CellStatus.CONVERGED]
        )
        campaign = run_campaign(
            cells, quick_config(),
            executor=lambda cell, config: stub_result(cell, next(statuses)),
        )
        text = summarize_campaign(campaign)
        assert "dijkstra4 n=3" in text and "kstate n=3" in text
        assert "needs attention:" in text
        assert "diverged" in text

    def test_all_clean_summary_has_no_attention_section(self):
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=1)
        campaign = run_campaign(cells, quick_config(), executor=stub_executor)
        text = summarize_campaign(campaign)
        assert "needs attention:" not in text
        assert "executed 1" in text


class TestCheckpointCrashRecovery:
    """A crash mid-append leaves a torn final line; resume drops it."""

    def _run_then_tear(self, tmp_path, keep_bytes=None):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=2)
        config = quick_config(checkpoint=checkpoint)
        run_campaign(cells, config, executor=stub_executor)
        data = checkpoint.read_bytes()
        head, _, last = data.rstrip(b"\n").rpartition(b"\n")
        cut = len(last) // 2 if keep_bytes is None else keep_bytes
        checkpoint.write_bytes(head + b"\n" + last[:cut])
        return checkpoint, cells, config

    def test_truncated_final_line_is_dropped_and_rerun(self, tmp_path):
        from repro.obs import Recorder

        checkpoint, cells, config = self._run_then_tear(tmp_path)
        ran = []

        def counting(cell, config):
            ran.append(cell.cell_id())
            return stub_result(cell)

        recorder = Recorder(kind="test")
        campaign = run_campaign(
            cells, config, resume=True, executor=counting,
            instrumentation=recorder,
        )
        # Exactly the torn cell re-ran; everything before it resumed.
        assert ran == [cells[-1].cell_id()]
        assert campaign.skipped == len(cells) - 1
        assert campaign.executed == 1
        record = recorder.record()
        assert record.counters["resilience.checkpoint.truncated"] == 1
        truncated = [
            event for event in record.events
            if event.name == "campaign.checkpoint.truncated"
        ]
        assert len(truncated) == 1

    def test_interior_corruption_stays_fatal(self, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        cells = build_grid(systems=("dijkstra4",), sizes=(3,), seeds=2)
        config = quick_config(checkpoint=checkpoint)
        run_campaign(cells, config, executor=stub_executor)
        lines = checkpoint.read_text(encoding="utf-8").splitlines()
        # Damage a line that is NOT the last one: not a crash signature.
        lines[1] = lines[1][: len(lines[1]) // 2]
        checkpoint.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(SimulationError, match="corrupt"):
            run_campaign(cells, config, resume=True, executor=stub_executor)

    def test_resumed_checkpoint_replays_identically_after_repair(
        self, tmp_path
    ):
        checkpoint, cells, config = self._run_then_tear(tmp_path)
        campaign = run_campaign(
            cells, config, resume=True, executor=stub_executor
        )
        assert len(campaign.results) == len(cells)
        assert campaign.pending == 0 and campaign.ok
