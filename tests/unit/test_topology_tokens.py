"""Unit tests for ring topology, token calculus, and the invariant I."""

import pytest

from repro.rings.legitimate import (
    exactly_one_token,
    i1_holds,
    i2_i3_hold,
    legitimate_btr_states,
)
from repro.rings.btr import btr_program
from repro.rings.tokens import (
    all_single_token_states,
    count_tokens,
    state_with_tokens,
    token_flags,
    tokens_in_state,
)
from repro.rings.topology import Ring


class TestRing:
    def test_rejects_tiny_rings(self):
        with pytest.raises(ValueError):
            Ring(1)

    def test_top_and_bottom(self):
        ring = Ring(5)
        assert ring.top == 4
        assert ring.bottom == 0

    def test_middles(self):
        assert list(Ring(5).middles()) == [1, 2, 3]
        assert list(Ring(2).middles()) == []

    def test_succ_pred_wrap(self):
        ring = Ring(4)
        assert ring.succ(3) == 0
        assert ring.pred(0) == 3

    def test_variable_names(self):
        assert Ring.ut(3) == "ut.3"
        assert Ring.dt(0) == "dt.0"
        assert Ring.c(2) == "c.2"
        assert Ring.up(1) == "up.1"
        assert Ring.t(4) == "t.4"

    def test_token_indices(self):
        ring = Ring(4)
        assert list(ring.up_token_indices()) == [1, 2, 3]
        assert list(ring.down_token_indices()) == [0, 1, 2]

    def test_token_variable_names_count(self):
        # 2N flags for N+1 processes.
        for n in (2, 3, 5):
            assert len(Ring(n).token_variable_names()) == 2 * (n - 1)


class TestTokenCalculus:
    @pytest.fixture
    def schema(self):
        return btr_program(4).schema()

    def test_token_flags_match_schema(self, schema):
        assert set(token_flags(Ring(4))) == set(schema.names)

    def test_state_with_tokens_roundtrip(self, schema):
        state = state_with_tokens(schema, ["ut.2", "dt.1"])
        assert set(tokens_in_state(schema, state)) == {"ut.2", "dt.1"}
        assert count_tokens(schema, state) == 2

    def test_empty_token_state(self, schema):
        state = state_with_tokens(schema, [])
        assert count_tokens(schema, state) == 0

    def test_all_single_token_states(self, schema):
        states = all_single_token_states(Ring(4), schema)
        assert len(states) == 6
        assert all(count_tokens(schema, s) == 1 for s in states)


class TestInvariantI:
    @pytest.fixture
    def schema(self):
        return btr_program(3).schema()

    def test_i1(self, schema):
        assert i1_holds(schema, state_with_tokens(schema, ["ut.1"]))
        assert not i1_holds(schema, state_with_tokens(schema, []))

    def test_i2_i3(self, schema):
        assert i2_i3_hold(schema, state_with_tokens(schema, []))
        assert i2_i3_hold(schema, state_with_tokens(schema, ["dt.0"]))
        assert not i2_i3_hold(schema, state_with_tokens(schema, ["ut.1", "dt.1"]))

    def test_exactly_one(self, schema):
        assert exactly_one_token(schema, state_with_tokens(schema, ["ut.2"]))
        assert not exactly_one_token(schema, state_with_tokens(schema, []))

    def test_predicate_matches_reachability(self, schema):
        """The invariant states are exactly BTR's reachable states."""
        btr = btr_program(3).compile()
        assert legitimate_btr_states(Ring(3), schema) == btr.reachable()
