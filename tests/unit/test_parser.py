"""Unit tests for the GCL parser and lexer."""

import pytest

from repro.core.errors import GCLError, GCLParseError
from repro.gcl.domain import BoolDomain, IntRange, ModularDomain
from repro.gcl.parser import parse_expression, parse_program, tokenize


class TestTokenizer:
    def test_symbols_and_identifiers(self):
        tokens = tokenize("c.0 := (x + 1) % 3 --> ..")
        texts = [t.text for t in tokens]
        assert texts == ["c.0", ":=", "(", "x", "+", "1", ")", "%", "3",
                         "-->", "..", ""]

    def test_keywords_are_distinguished(self):
        kinds = {t.text: t.kind for t in tokenize("var x bool true foo")}
        assert kinds["var"] == "keyword"
        assert kinds["bool"] == "keyword"
        assert kinds["true"] == "keyword"
        assert kinds["foo"] == "ident"

    def test_comments_and_whitespace_dropped(self):
        tokens = tokenize("x # this is a comment\n y")
        assert [t.text for t in tokens if t.kind != "eof"] == ["x", "y"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert (b_token.line, b_token.column) == (2, 3)

    def test_unknown_character_raises_with_location(self):
        with pytest.raises(GCLParseError, match="line 1"):
            tokenize("x @ y")

    def test_dotted_identifiers(self):
        tokens = tokenize("up.10.z")
        assert tokens[0].text == "up.10.z"


class TestExpressionParsing:
    def test_precedence_arithmetic_over_comparison(self):
        expr = parse_expression("x + 1 == y * 2")
        assert expr.eval({"x": 3, "y": 2}) is True

    def test_precedence_comparison_over_and(self):
        expr = parse_expression("x < 2 && y < 2")
        assert expr.eval({"x": 1, "y": 1}) is True
        assert expr.eval({"x": 2, "y": 1}) is False

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("true || false && false")
        assert expr.eval({}) is True

    def test_implies_is_right_associative(self):
        expr = parse_expression("false => false => false")
        # false => (false => false) == true
        assert expr.eval({}) is True

    def test_unary_not_and_minus(self):
        assert parse_expression("!(x == 1)").eval({"x": 2}) is True
        assert parse_expression("-x + 3").eval({"x": 1}) == 2

    def test_ternary(self):
        expr = parse_expression("x == 0 ? 10 : 20")
        assert expr.eval({"x": 0}) == 10
        assert expr.eval({"x": 1}) == 20

    def test_nested_ternary_right_associates(self):
        expr = parse_expression("x == 0 ? 1 : x == 1 ? 2 : 3")
        assert expr.eval({"x": 2}) == 3

    def test_parentheses(self):
        assert parse_expression("(x + 1) % 3").eval({"x": 2}) == 0

    def test_trailing_input_rejected(self):
        with pytest.raises(GCLParseError, match="trailing"):
            parse_expression("x + 1 y")

    def test_dangling_operator_rejected(self):
        with pytest.raises(GCLParseError):
            parse_expression("x +")


class TestProgramParsing:
    SOURCE = """
    program demo
    var x, y : mod 3
    var flag : bool
    var level : 1..4

    process left owns x reads y
    process right owns y, flag, level reads x

    action bump of left :: x != y --> x := (x + 1) % 3
    action sync of right :: flag && level < 4 --> y := x, flag := false

    init x == 0 && y == 0 && !flag && level == 1
    """

    def test_variables_with_all_domain_forms(self):
        program = parse_program(self.SOURCE)
        assert program.variable("x").domain == ModularDomain(3)
        assert program.variable("flag").domain == BoolDomain()
        assert program.variable("level").domain == IntRange(1, 4)

    def test_actions_and_multiassignment(self):
        program = parse_program(self.SOURCE)
        sync = {a.name: a for a in program.actions}["sync"]
        assert sync.write_set() == {"y", "flag"}

    def test_processes_and_ownership(self):
        program = parse_program(self.SOURCE)
        by_name = {p.name: p for p in program.processes}
        assert by_name["left"].owns == {"x"}
        assert by_name["right"].owns == {"y", "flag", "level"}
        assert [a.name for a in by_name["left"].actions] == ["bump"]

    def test_initial_states(self):
        program = parse_program(self.SOURCE)
        assert list(program.initial_states()) == [(0, 0, False, 1)]

    def test_program_without_processes(self):
        program = parse_program(
            "program tiny\nvar x : bool\naction t :: x --> x := false"
        )
        assert program.processes == ()

    def test_process_without_reads_clause_infers(self):
        program = parse_program(
            "program tiny\nvar x, y : bool\nprocess p owns x\n"
            "action t of p :: y --> x := false"
        )
        assert program.processes[0].reads == {"x", "y"}

    def test_orphan_action_with_processes_rejected(self):
        with pytest.raises(GCLParseError, match="of"):
            parse_program(
                "program bad\nvar x : bool\nprocess p owns x\n"
                "action t :: x --> x := false"
            )

    def test_unknown_process_rejected(self):
        with pytest.raises(GCLParseError, match="undeclared"):
            parse_program(
                "program bad\nvar x : bool\nprocess p owns x\n"
                "action t of q :: x --> x := false"
            )

    def test_duplicate_process_rejected(self):
        with pytest.raises(GCLParseError, match="twice"):
            parse_program(
                "program bad\nvar x : bool\nprocess p owns x\nprocess p owns x"
            )

    def test_duplicate_init_rejected(self):
        with pytest.raises(GCLParseError, match="duplicate init"):
            parse_program(
                "program bad\nvar x : bool\ninit x\ninit !x"
            )

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(GCLParseError, match="twice"):
            parse_program(
                "program bad\nvar x : bool\n"
                "action t :: x --> x := false, x := true"
            )

    def test_empty_range_rejected(self):
        with pytest.raises(GCLParseError, match="empty range"):
            parse_program("program bad\nvar x : 5..2")

    def test_semantic_errors_bubble_as_gcl_errors(self):
        with pytest.raises(GCLError):
            parse_program(
                "program bad\nvar x : bool\naction t :: y --> x := false"
            )

    def test_missing_program_keyword(self):
        with pytest.raises(GCLParseError):
            parse_program("var x : bool")
