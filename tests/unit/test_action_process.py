"""Unit tests for guarded actions and process model compliance."""

import pytest

from repro.core.errors import GCLEvalError
from repro.gcl.action import GuardedAction
from repro.gcl.expr import And, Const, Eq, Ne, Not, Var
from repro.gcl.process import Process, check_model_compliance


class TestGuardedAction:
    def test_requires_assignments(self):
        with pytest.raises(ValueError):
            GuardedAction("noop", Const(True), {})

    def test_enabled_evaluates_guard(self):
        action = GuardedAction("a", Eq(Var("x"), Const(1)), {"x": Const(0)})
        assert action.enabled({"x": 1})
        assert not action.enabled({"x": 0})

    def test_enabled_rejects_non_boolean_guard(self):
        action = GuardedAction("a", Var("x"), {"x": Const(0)})
        with pytest.raises(GCLEvalError):
            action.enabled({"x": 3})

    def test_execute_is_parallel(self):
        swap = GuardedAction("swap", Const(True), {"x": Var("y"), "y": Var("x")})
        assert swap.execute({"x": 1, "y": 2}) == {"x": 2, "y": 1}

    def test_execute_preserves_untouched_variables(self):
        action = GuardedAction("a", Const(True), {"x": Const(9)})
        result = action.execute({"x": 1, "z": 5})
        assert result == {"x": 9, "z": 5}

    def test_execute_does_not_mutate_input(self):
        action = GuardedAction("a", Const(True), {"x": Const(9)})
        env = {"x": 1}
        action.execute(env)
        assert env == {"x": 1}

    def test_read_and_write_sets(self):
        action = GuardedAction(
            "a", Eq(Var("g"), Const(1)), {"x": Var("y"), "z": Const(0)}
        )
        assert action.read_set() == {"g", "y"}
        assert action.write_set() == {"x", "z"}

    def test_render_mentions_guard_and_effects(self):
        action = GuardedAction("a", Ne(Var("x"), Var("y")), {"x": Var("y")})
        text = action.render()
        assert "-->" in text and "x := y" in text


class TestProcessCompliance:
    def _action(self, name, reads, writes):
        guard = Const(True)
        for read in reads:
            guard = And(guard, Eq(Var(read), Var(read)))
        return GuardedAction(name, guard, {w: Const(0) for w in writes})

    def test_compliant_process(self):
        action = self._action("a", ["left", "mine"], ["mine"])
        process = Process("p", owns=["mine"], reads=["left"], actions=[action])
        assert check_model_compliance([process]) == []

    def test_concrete_model_flags_neighbour_write(self):
        action = self._action("a", ["mine"], ["mine", "left"])
        process = Process("p", owns=["mine"], reads=["left"], actions=[action])
        violations = check_model_compliance([process], writes_restricted=True)
        assert len(violations) == 1
        assert violations[0].kind == "write"
        assert violations[0].variable == "left"
        assert "writes left" in violations[0].format()

    def test_abstract_model_allows_neighbour_write(self):
        action = self._action("a", ["mine"], ["mine", "left"])
        process = Process("p", owns=["mine"], reads=["left"], actions=[action])
        assert check_model_compliance([process], writes_restricted=False) == []

    def test_read_outside_neighbourhood_flagged_in_both_models(self):
        action = self._action("a", ["far"], ["mine"])
        process = Process("p", owns=["mine"], reads=["left"], actions=[action])
        for restricted in (True, False):
            violations = check_model_compliance([process], restricted)
            assert any(v.kind == "read" and v.variable == "far" for v in violations)

    def test_own_variables_always_readable(self):
        action = self._action("a", ["mine"], ["mine"])
        process = Process("p", owns=["mine"], reads=[], actions=[action])
        assert check_model_compliance([process]) == []
