"""Unit tests for repro.gcl.domain."""

import pytest

from repro.gcl.domain import BoolDomain, Domain, EnumDomain, IntRange, ModularDomain


class TestDomain:
    def test_basic_membership_and_order(self):
        domain = Domain((3, 1, 2), "custom")
        assert domain.values == (3, 1, 2)
        assert 1 in domain and 4 not in domain
        assert len(domain) == 3
        assert list(domain) == [3, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Domain(())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Domain((1, 1))

    def test_equality_and_hash_on_values(self):
        assert Domain((1, 2), "a") == Domain((1, 2), "b")
        assert hash(Domain((1, 2))) == hash(Domain((1, 2)))
        assert Domain((1, 2)) != Domain((2, 1))


class TestBoolDomain:
    def test_members(self):
        domain = BoolDomain()
        assert domain.values == (False, True)
        assert domain.description == "bool"


class TestIntRange:
    def test_inclusive_bounds(self):
        domain = IntRange(2, 5)
        assert domain.values == (2, 3, 4, 5)
        assert domain.low == 2 and domain.high == 5

    def test_singleton_range(self):
        assert IntRange(7, 7).values == (7,)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            IntRange(5, 4)


class TestModularDomain:
    def test_members(self):
        domain = ModularDomain(3)
        assert domain.values == (0, 1, 2)
        assert domain.modulus == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ModularDomain(0)


class TestEnumDomain:
    def test_arbitrary_values(self):
        domain = EnumDomain(("red", "green"))
        assert "red" in domain
        assert "{red, green}" == domain.description
