"""Unit tests for repro.core.computation."""

import pytest

from repro.core.computation import (
    common_suffix_start,
    is_subsequence,
    is_suffix,
    omission_count,
    remove_stutter,
    subsequence_embedding,
    suffixes,
)


class TestIsSuffix:
    def test_exact_match(self):
        assert is_suffix("abc", "abc")

    def test_proper_suffix(self):
        assert is_suffix("bc", "abc")

    def test_not_a_suffix(self):
        assert not is_suffix("ab", "abc")

    def test_longer_candidate(self):
        assert not is_suffix("xabc", "abc")

    def test_empty_candidate(self):
        assert is_suffix("", "abc")

    def test_works_on_state_tuples(self):
        assert is_suffix([(1,), (2,)], [(0,), (1,), (2,)])


class TestSuffixes:
    def test_yields_all_nonempty_suffixes_longest_first(self):
        assert list(suffixes("abc")) == [("a", "b", "c"), ("b", "c"), ("c",)]

    def test_empty_sequence(self):
        assert list(suffixes("")) == []


class TestSubsequence:
    def test_paper_positive_example(self):
        # c = s1 s3 s6 vs a = s1 s2 s3 s4 s5 s6
        assert is_subsequence("136", "123456")

    def test_insertion_is_rejected(self):
        # c = s1 s3 s5 s6 vs a = s1 s2 s5 s6 : 3 is an insertion
        assert not is_subsequence("1356", "1256")

    def test_reordering_is_rejected(self):
        assert not is_subsequence("21", "12")

    def test_embedding_positions_are_increasing(self):
        positions = subsequence_embedding("ace", "abcde")
        assert positions == [0, 2, 4]

    def test_embedding_none_when_absent(self):
        assert subsequence_embedding("az", "abc") is None

    def test_empty_candidate_embeds_trivially(self):
        assert subsequence_embedding("", "abc") == []

    def test_greedy_is_complete_with_duplicates(self):
        assert is_subsequence("aba", "aabba")


class TestOmissionCount:
    def test_counts_dropped_states(self):
        assert omission_count("136", "123456") == 3

    def test_zero_for_equal(self):
        assert omission_count("abc", "abc") == 0

    def test_none_for_non_subsequence(self):
        assert omission_count("x", "abc") is None


class TestRemoveStutter:
    def test_collapses_runs(self):
        assert remove_stutter("aaabbbcc") == ("a", "b", "c")

    def test_idempotent(self):
        once = remove_stutter("aabbaa")
        assert remove_stutter(once) == once

    def test_preserves_alternation(self):
        assert remove_stutter("abab") == ("a", "b", "a", "b")

    def test_empty(self):
        assert remove_stutter("") == ()


class TestCommonSuffixStart:
    def test_full_overlap(self):
        assert common_suffix_start("abc", "abc") == 0

    def test_partial_overlap(self):
        assert common_suffix_start("xbc", "ybc") == 1

    def test_final_state_only(self):
        assert common_suffix_start("xc", "yc") == 1

    def test_no_shared_final_state(self):
        assert common_suffix_start("ab", "cd") is None

    def test_empty_sequences(self):
        assert common_suffix_start("", "a") is None
