"""Unit tests for the supervision policy and deterministic backoff.

The invariants under test: the backoff schedule is a pure function of
``(seed, task, attempt)`` — never of wall clocks or global RNG state —
so two runs of the same fault plan retry on the same schedule; the
policy validates its tunables at construction; and the process-global
policy stack nests and restores correctly.
"""

from __future__ import annotations

import pytest

from repro.resilience import (
    DEFAULT_POLICY,
    SupervisionPolicy,
    backoff_delay,
    current_policy,
    using_policy,
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.task_timeout is None
        assert policy.max_task_retries == 2

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(task_timeout=-1.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_task_retries=-1)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            SupervisionPolicy(backoff_cap=-1.0)


class TestBackoffDeterminism:
    def test_same_triple_same_delay(self):
        policy = SupervisionPolicy(seed=7)
        assert backoff_delay(policy, 3, 2) == backoff_delay(policy, 3, 2)

    def test_seed_task_and_attempt_all_perturb_the_delay(self):
        base = backoff_delay(SupervisionPolicy(seed=0), 0, 1)
        assert backoff_delay(SupervisionPolicy(seed=1), 0, 1) != base
        assert backoff_delay(SupervisionPolicy(seed=0), 1, 1) != base
        # Different attempts draw different jitter fractions *and*
        # different ceilings; equality would be astronomically unlikely.
        assert backoff_delay(SupervisionPolicy(seed=0), 0, 2) != base

    def test_delay_respects_ceiling_and_cap(self):
        policy = SupervisionPolicy(backoff_base=0.01, backoff_cap=0.02)
        for attempt in range(1, 10):
            delay = backoff_delay(policy, 0, attempt)
            ceiling = min(0.01 * 2 ** (attempt - 1), 0.02)
            assert 0.0 <= delay <= ceiling

    def test_rejects_attempt_below_one(self):
        with pytest.raises(ValueError):
            backoff_delay(DEFAULT_POLICY, 0, 0)

    def test_known_value_is_platform_stable(self):
        """Pin one concrete delay: the schedule must never drift
        across platforms or Python versions (it is sha256-derived)."""
        policy = SupervisionPolicy(seed=0, backoff_base=1.0, backoff_cap=1.0)
        delay = backoff_delay(policy, 0, 1)
        assert delay == pytest.approx(0.3583419225365296)


class TestPolicyStack:
    def test_default_is_active(self):
        assert current_policy() is DEFAULT_POLICY

    def test_using_policy_installs_and_restores(self):
        custom = SupervisionPolicy(max_task_retries=5)
        with using_policy(custom):
            assert current_policy() is custom
        assert current_policy() is DEFAULT_POLICY

    def test_contexts_nest(self):
        outer = SupervisionPolicy(seed=1)
        inner = SupervisionPolicy(seed=2)
        with using_policy(outer):
            with using_policy(inner):
                assert current_policy() is inner
            assert current_policy() is outer

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with using_policy(SupervisionPolicy(seed=9)):
                raise RuntimeError("boom")
        assert current_policy() is DEFAULT_POLICY
