"""Unit tests for repro.gcl.program."""

import pytest

from repro.core.errors import GCLError
from repro.gcl.action import GuardedAction
from repro.gcl.domain import BoolDomain, ModularDomain
from repro.gcl.expr import Const, Eq, Ne, Var
from repro.gcl.process import Process
from repro.gcl.program import Program
from repro.gcl.variable import Variable


@pytest.fixture
def variables():
    return [Variable("x", ModularDomain(3)), Variable("b", BoolDomain())]


@pytest.fixture
def actions():
    return [
        GuardedAction("dec", Ne(Var("x"), Const(0)), {"x": Const(0)}),
        GuardedAction("flip", Var("b"), {"b": Const(False)}),
    ]


class TestConstruction:
    def test_rejects_duplicate_variables(self, actions):
        doubled = [Variable("x", ModularDomain(3)), Variable("x", ModularDomain(3))]
        with pytest.raises(GCLError):
            Program("p", doubled, [])

    def test_rejects_duplicate_action_names(self, variables):
        action = GuardedAction("a", Const(True), {"x": Const(0)})
        with pytest.raises(GCLError):
            Program("p", variables, [action, action])

    def test_rejects_undeclared_variables(self, variables):
        rogue = GuardedAction("a", Const(True), {"zz": Const(0)})
        with pytest.raises(GCLError):
            Program("p", variables, [rogue])

    def test_rejects_process_action_mismatch(self, variables, actions):
        process = Process("p0", ["x"], [], [actions[0]])  # misses "flip"
        with pytest.raises(GCLError):
            Program("p", variables, actions, processes=[process])

    def test_variable_lookup(self, variables, actions):
        program = Program("p", variables, actions)
        assert program.variable("x").domain == ModularDomain(3)
        with pytest.raises(KeyError):
            program.variable("zz")


class TestSchemaAndStates:
    def test_schema_follows_declaration_order(self, variables, actions):
        program = Program("p", variables, actions)
        assert program.schema().names == ("x", "b")
        assert program.schema().size() == 6

    def test_env_state_roundtrip(self, variables, actions):
        program = Program("p", variables, actions)
        env = {"x": 2, "b": True}
        assert program.env_of(program.state_of(env)) == env

    def test_enabled_actions(self, variables, actions):
        program = Program("p", variables, actions)
        enabled = program.enabled_actions(program.state_of({"x": 1, "b": False}))
        assert [a.name for a in enabled] == ["dec"]


class TestInitialStates:
    def test_predicate_init(self, variables, actions):
        program = Program(
            "p", variables, actions, init=Eq(Var("x"), Const(0))
        )
        initials = set(program.initial_states())
        assert initials == {(0, False), (0, True)}
        assert program.is_initial((0, True))
        assert not program.is_initial((1, True))

    def test_explicit_init(self, variables, actions):
        program = Program(
            "p", variables, actions, init=[{"x": 1, "b": False}]
        )
        assert set(program.initial_states()) == {(1, False)}
        assert program.is_initial((1, False))

    def test_no_init(self, variables, actions):
        program = Program("p", variables, actions, init=None)
        assert list(program.initial_states()) == []
        assert not program.is_initial((0, False))

    def test_non_boolean_predicate_rejected(self, variables, actions):
        program = Program("p", variables, actions, init=Var("x"))
        with pytest.raises(GCLError):
            list(program.initial_states())


class TestStructuralHelpers:
    def test_with_actions_replaces_list(self, variables, actions):
        program = Program("p", variables, actions, init=None)
        slim = program.with_actions(actions[:1], name="slim")
        assert len(slim.actions) == 1
        assert slim.name == "slim"

    def test_with_init_replaces_initial(self, variables, actions):
        program = Program("p", variables, actions, init=None)
        seeded = program.with_init([{"x": 0, "b": False}])
        assert list(seeded.initial_states()) == [(0, False)]

    def test_merged_with_concatenates_actions(self, variables, actions):
        base = Program("base", variables, actions[:1], init=None)
        wrap = Program("wrap", variables, actions[1:], init=None)
        merged = base.merged_with(wrap)
        assert [a.name for a in merged.actions] == ["dec", "flip"]
        assert merged.name == "base [] wrap"

    def test_merged_with_rejects_different_variables(self, variables, actions):
        other = Program("o", [Variable("x", ModularDomain(3))], [], init=None)
        base = Program("base", variables, actions, init=None)
        with pytest.raises(GCLError):
            base.merged_with(other)

    def test_merged_with_rejects_name_collision(self, variables, actions):
        base = Program("base", variables, actions, init=None)
        with pytest.raises(GCLError):
            base.merged_with(base)
