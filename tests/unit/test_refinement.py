"""Unit tests for the refinement relations (graph + definitional forms)."""

import pytest

from repro.core.refinement import (
    check_convergence_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    compression_transitions,
    convergence_refines_on_computations,
    everywhere_refines_on_computations,
    expand_to_abstract_path,
    refines_init_on_computations,
)
from repro.core.state import StateSchema
from repro.core.system import System
from repro.checker.witnesses import WitnessKind


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(6))})


def sys_of(schema, pairs, initial=((0,),), name="s"):
    return System(schema, [((a,), (b,)) for a, b in pairs], initial=initial, name=name)


@pytest.fixture
def abstract(schema):
    """0 -> 1 -> 2 -> 3 -> 0 (cycle) plus recovery edges 4 -> 2, 5 -> 4."""
    return sys_of(
        schema,
        [(0, 1), (1, 2), (2, 3), (3, 0), (4, 2), (5, 4)],
        name="A",
    )


class TestInitRefinement:
    def test_identical_system_refines(self, abstract):
        assert check_init_refinement(abstract, abstract).holds

    def test_subrelation_refines(self, schema, abstract):
        concrete = sys_of(schema, [(0, 1), (1, 2), (2, 3), (3, 0)], name="C")
        assert check_init_refinement(concrete, abstract).holds

    def test_unreachable_junk_is_ignored(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (5, 1)], name="C"
        )
        assert check_init_refinement(concrete, abstract).holds

    def test_reachable_illegal_transition_fails(self, schema, abstract):
        concrete = sys_of(schema, [(0, 2)], name="C")
        result = check_init_refinement(concrete, abstract)
        assert not result.holds
        assert result.witness.kind is WitnessKind.ILLEGAL_TRANSITION

    def test_initial_state_must_map_into_abstract_initial(self, schema, abstract):
        concrete = sys_of(schema, [(1, 2)], initial=((1,),), name="C")
        assert not check_init_refinement(concrete, abstract).holds

    def test_premature_termination_fails_maximality(self, schema, abstract):
        concrete = sys_of(schema, [(0, 1)], name="C")  # halts at 1; A moves on
        result = check_init_refinement(concrete, abstract)
        assert not result.holds
        assert result.witness.kind is WitnessKind.BAD_TERMINAL

    def test_open_systems_skip_maximality(self, schema, abstract):
        concrete = sys_of(schema, [(0, 1)], name="C")
        assert check_init_refinement(concrete, abstract, open_systems=True).holds

    def test_agrees_with_definitional_oracle(self, schema, abstract):
        good = sys_of(schema, [(0, 1), (1, 2), (2, 3), (3, 0)], name="C")
        bad = sys_of(schema, [(0, 2)], name="C")
        assert refines_init_on_computations(good, abstract, max_length=8)
        assert not refines_init_on_computations(bad, abstract, max_length=8)


class TestEverywhereRefinement:
    def test_full_copy_everywhere_refines(self, abstract):
        assert check_everywhere_refinement(abstract, abstract).holds

    def test_init_only_refinement_is_not_everywhere(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 3)], name="C"
        )
        assert check_init_refinement(concrete, abstract).holds
        assert not check_everywhere_refinement(concrete, abstract).holds

    def test_terminal_mismatch_detected(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (5, 4)], name="C"
        )
        # state 4 is terminal in C but A can move 4 -> 2.
        result = check_everywhere_refinement(concrete, abstract)
        assert not result.holds
        assert result.witness.kind is WitnessKind.BAD_TERMINAL

    def test_agrees_with_definitional_oracle(self, schema, abstract):
        bad = sys_of(schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 3)], name="C")
        assert not everywhere_refines_on_computations(bad, abstract, max_length=6)
        assert everywhere_refines_on_computations(abstract, abstract, max_length=6)


class TestConvergenceRefinement:
    def test_everywhere_refinement_implies_convergence(self, schema, abstract):
        concrete = sys_of(schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 2)], name="C")
        assert check_everywhere_refinement(concrete, abstract, open_systems=True).holds
        assert check_convergence_refinement(concrete, abstract, open_systems=True).holds

    def test_compression_off_cycle_is_accepted(self, schema, abstract):
        # C jumps 5 -> 2 where A goes 5 -> 4 -> 2: a one-shot compression.
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 2), (5, 2)], name="C"
        )
        result = check_convergence_refinement(concrete, abstract)
        assert result.holds
        assert compression_transitions(concrete, abstract) == [((5,), (2,))]

    def test_compression_on_cycle_is_rejected(self, schema):
        # A has two cycles: 0->1->2->0 and 3->4->5->3.  C follows the
        # first exactly but shortcuts the second (3->5), so from the
        # (unreachable, fault-entered) state 3 it compresses forever.
        abstract = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], name="A"
        )
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 5), (5, 3)], name="C"
        )
        result = check_convergence_refinement(concrete, abstract)
        assert not result.holds
        assert result.witness.kind is WitnessKind.COMPRESSION_ON_CYCLE

    def test_unrealizable_step_is_rejected(self, schema, abstract):
        # An unreachable transition (no initial states) whose image has
        # no realizing path: A cannot get from 2 back up to 5.
        concrete = sys_of(schema, [(2, 5)], initial=(), name="C")
        result = check_convergence_refinement(concrete, abstract, open_systems=True)
        assert not result.holds
        assert result.witness.kind is WitnessKind.NO_ABSTRACT_PATH

    def test_reachable_illegal_step_fails_init_clause(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 5)], name="C"
        )
        result = check_convergence_refinement(concrete, abstract)
        assert not result.holds
        assert result.witness.kind is WitnessKind.ILLEGAL_TRANSITION

    def test_strict_stutter_needs_abstract_self_loop(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 4), (4, 2), (5, 4)],
            name="C",
        )
        strict = check_convergence_refinement(concrete, abstract)
        assert not strict.holds
        relaxed = check_convergence_refinement(
            concrete, abstract, stutter_insensitive=True
        )
        assert relaxed.holds

    def test_agrees_with_definitional_oracle_positive(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 2), (5, 2)], name="C"
        )
        assert convergence_refines_on_computations(
            concrete, abstract, max_length=6
        )

    def test_agrees_with_definitional_oracle_negative(self, schema, abstract):
        concrete = sys_of(
            schema, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 5)], name="C"
        )
        assert not convergence_refines_on_computations(
            concrete, abstract, max_length=6
        )

    def test_schema_mismatch_without_alpha_raises(self, schema, abstract):
        from repro.core.errors import SchemaMismatchError

        other = System(StateSchema({"w": (0, 1)}), [], initial=[])
        with pytest.raises(SchemaMismatchError):
            check_convergence_refinement(other, abstract)


class TestExpandToAbstractPath:
    def test_exact_steps_pass_through(self, abstract):
        path = expand_to_abstract_path(((0,), (1,), (2,)), abstract)
        assert path == ((0,), (1,), (2,))

    def test_compression_is_expanded(self, schema, abstract):
        # concrete jumps 5 -> 2; the witness inserts the 4 in between.
        path = expand_to_abstract_path(((5,), (2,)), abstract)
        assert path == ((5,), (4,), (2,))

    def test_unrealizable_returns_none(self, schema, abstract):
        assert expand_to_abstract_path(((2,), (5,)), abstract) is None

    def test_stutters_skipped_in_stutter_mode(self, abstract):
        path = expand_to_abstract_path(
            ((0,), (0,), (1,)), abstract, stutter_insensitive=True
        )
        assert path == ((0,), (1,))

    def test_empty_sequence(self, abstract):
        assert expand_to_abstract_path((), abstract) is None
