"""Degenerate-input robustness of the decision procedures."""

import pytest

from repro.checker import (
    behavioural_core,
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
    compression_transitions,
    find_fair_trap,
    worst_case_convergence_steps,
)
from repro.core.abstraction import AbstractionFunction
from repro.core.state import StateSchema
from repro.core.system import System

SINGLETON = StateSchema({"v": (0,)})
PAIR = StateSchema({"v": (0, 1)})


class TestSingletonSpace:
    def test_empty_system_refines_itself(self):
        system = System(SINGLETON, [], initial=[(0,)])
        assert check_init_refinement(system, system).holds
        assert check_everywhere_refinement(system, system).holds
        assert check_convergence_refinement(system, system).holds

    def test_empty_system_self_stabilizes(self):
        system = System(SINGLETON, [], initial=[(0,)])
        result = check_self_stabilization(system)
        assert result.holds
        assert result.worst_case_steps == 0

    def test_self_loop_only_system(self):
        system = System(SINGLETON, [((0,), (0,))], initial=[(0,)])
        assert check_self_stabilization(system).holds
        assert check_convergence_refinement(system, system).holds


class TestEmptyInitialSets:
    def test_wrapper_like_system_init_refines_anything(self):
        wrapper = System(PAIR, [((0,), (1,))], initial=[])
        target = System(PAIR, [], initial=[])
        # no initial states: the init clause is vacuous; the everywhere
        # clause is not.
        assert check_init_refinement(wrapper, target, open_systems=True).holds
        assert not check_everywhere_refinement(wrapper, target).holds

    def test_stabilization_with_empty_legitimate_set_fails(self):
        concrete = System(PAIR, [((0,), (1,)), ((1,), (0,))], initial=[(0,)])
        spec = System(PAIR, [((0,), (1,)), ((1,), (0,))], initial=[])
        result = check_stabilization(concrete, spec, compute_steps=False)
        assert not result.holds


class TestTerminalSpecs:
    def test_spec_that_halts_is_matched_by_halting_concrete(self):
        spec = System(PAIR, [((1,), (0,))], initial=[(0,)])  # 0 terminal
        concrete = System(PAIR, [((1,), (0,))], initial=[(0,)])
        assert check_stabilization(concrete, spec).holds

    def test_busy_concrete_fails_a_halting_spec(self):
        spec = System(PAIR, [((1,), (0,))], initial=[(0,)])
        concrete = System(
            PAIR, [((1,), (0,)), ((0,), (1,))], initial=[(0,)]
        )
        assert not check_stabilization(concrete, spec, compute_steps=False).holds


class TestCollapsingAbstraction:
    def test_everything_maps_to_one_state(self):
        concrete = System(PAIR, [((0,), (1,)), ((1,), (0,))], initial=[(0,)])
        spec = System(SINGLETON, [((0,), (0,))], initial=[(0,)])
        alpha = AbstractionFunction(PAIR, SINGLETON, lambda state: (0,))
        # every concrete step is an image self-loop, which the spec has.
        assert check_stabilization(concrete, spec, alpha).holds
        assert check_convergence_refinement(concrete, spec, alpha).holds

    def test_collapsing_onto_a_terminal_spec_needs_stutter_mode(self):
        concrete = System(PAIR, [((0,), (1,)), ((1,), (0,))], initial=[(0,)])
        spec = System(SINGLETON, [], initial=[(0,)])  # terminal everywhere
        alpha = AbstractionFunction(PAIR, SINGLETON, lambda state: (0,))
        strict = check_convergence_refinement(concrete, spec, alpha)
        assert not strict.holds
        # Even modulo stuttering the concrete loops invisibly forever
        # while the spec computation must be the single state — the
        # invisible-divergence clause rejects it.
        relaxed = check_convergence_refinement(
            concrete, spec, alpha, stutter_insensitive=True
        )
        assert not relaxed.holds


class TestMiscellaneous:
    def test_compression_transitions_of_identical_systems_is_empty(self):
        system = System(PAIR, [((0,), (1,))], initial=[(0,)])
        assert compression_transitions(system, system) == []

    def test_fair_trap_on_empty_system(self):
        system = System(PAIR, [], initial=[])
        assert find_fair_trap(system, STATES := [(0,), (1,)]) is None

    def test_worst_case_steps_with_full_core(self):
        system = System(PAIR, [((0,), (1,)), ((1,), (0,))], initial=[(0,)])
        core = behavioural_core(system, system)
        assert worst_case_convergence_steps(system, core) == 0

    def test_everywhere_eventually_on_identical_systems(self):
        system = System(
            PAIR, [((0,), (1,)), ((1,), (0,))], initial=[(0,)]
        )
        assert check_everywhere_eventually_refinement(system, system).holds
