"""Unit tests for the executable theorem schemas (Theorems 0-5)."""

import pytest

from repro.core.state import StateSchema
from repro.core.system import System
from repro.core.theorems import (
    lemma2_instance,
    lemma4_instance,
    theorem0_instance,
    theorem1_instance,
    theorem3_instance,
    theorem5_instance,
)


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(5))})


def sys_of(schema, pairs, initial=((0,),), name="s"):
    return System(schema, [((a,), (b,)) for a, b in pairs], initial=initial, name=name)


@pytest.fixture
def spec(schema):
    """Legitimate cycle 0 -> 1 -> 0; recovery 2 -> 0, 3 -> 2, 4 -> 2."""
    return sys_of(schema, [(0, 1), (1, 0), (2, 0), (3, 2), (4, 2)], name="A")


@pytest.fixture
def refined(schema):
    """An everywhere refinement of spec: one recovery path dropped ...
    but keeping 4 -> 2 (terminality must match)."""
    return sys_of(schema, [(0, 1), (1, 0), (2, 0), (3, 2), (4, 2)], name="C")


@pytest.fixture
def wrapper(schema):
    """Extra recovery transitions (a dependability wrapper)."""
    return System(
        schema,
        [((2,), (0,)), ((3,), (0,)), ((4,), (0,))],
        initial=[],
        name="W",
    )


class TestTheorem0And1:
    def test_theorem0_instance_all_rows_hold(self, spec, refined):
        report = theorem0_instance(refined, spec, spec)
        assert report.all_hold(), report.render(verbose=True)

    def test_theorem1_instance_all_rows_hold(self, spec, refined):
        report = theorem1_instance(refined, spec, spec)
        assert report.all_hold(), report.render(verbose=True)

    def test_theorem1_reports_premise_failure(self, schema, spec):
        bogus = sys_of(schema, [(0, 2)], name="C")
        report = theorem1_instance(bogus, spec, spec)
        assert not report.all_hold()
        assert any("premise" in e.label for e in report.failures())


class TestWrapperLemmas:
    def test_lemma2_instance(self, spec, refined, wrapper):
        report = lemma2_instance(refined, spec, wrapper)
        assert report.all_hold(), report.render(verbose=True)

    def test_theorem3_instance(self, spec, refined, wrapper):
        report = theorem3_instance(refined, spec, wrapper)
        assert report.all_hold(), report.render(verbose=True)

    def test_lemma4_instance_with_refined_wrapper(self, schema, spec, wrapper):
        # W' keeps only some of W's transitions: an open-system
        # everywhere refinement.  The composite must still stabilize:
        # the base spec supplies the missing recovery for 3 and 4.
        refined_wrapper = System(
            schema, [((2,), (0,))], initial=[], name="W'"
        )
        report = lemma4_instance(spec, wrapper, refined_wrapper)
        assert report.all_hold(), report.render(verbose=True)

    def test_theorem5_instance(self, schema, spec, refined, wrapper):
        refined_wrapper = System(
            schema, [((2,), (0,)), ((3,), (0,))], initial=[], name="W'"
        )
        report = theorem5_instance(refined, spec, wrapper, refined_wrapper)
        assert report.all_hold(), report.render(verbose=True)

    def test_theorem5_flags_nonrefining_wrapper(self, schema, spec, refined, wrapper):
        # A wrapper transition absent from W and unrealizable in W.
        rogue = System(schema, [((1,), (3,))], initial=[], name="rogue")
        report = theorem5_instance(refined, spec, wrapper, rogue)
        assert not report.all_hold()
        labels = [e.label for e in report.failures()]
        assert any("W' <= W" in label for label in labels)
