"""Unit tests for repro.core.system."""

import random

import pytest

from repro.core.errors import StateSpaceError
from repro.core.state import StateSchema
from repro.core.system import System, successors_closure


@pytest.fixture
def schema():
    return StateSchema({"v": (0, 1, 2, 3)})


@pytest.fixture
def diamond(schema):
    """0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; initial 0; 3 terminal."""
    return System(
        schema,
        [((0,), (1,)), ((0,), (2,)), ((1,), (3,)), ((2,), (3,))],
        initial=[(0,)],
        name="diamond",
        labels={((0,), (1,)): ["left"], ((0,), (2,)): ["right"]},
    )


class TestConstruction:
    def test_accepts_mapping_form(self, schema):
        system = System(schema, {(0,): [(1,), (2,)]}, initial=[(0,)])
        assert system.transition_count() == 2

    def test_rejects_invalid_transition_state(self, schema):
        with pytest.raises(StateSpaceError):
            System(schema, [((0,), (9,))], initial=[])

    def test_rejects_invalid_initial_state(self, schema):
        with pytest.raises(StateSpaceError):
            System(schema, [], initial=[(9,)])

    def test_empty_system_is_legal(self, schema):
        system = System(schema, [], initial=[])
        assert not system.enabled_anywhere()

    def test_duplicate_transitions_collapse(self, schema):
        system = System(schema, [((0,), (1,)), ((0,), (1,))], initial=[])
        assert system.transition_count() == 1


class TestAccessors:
    def test_successors(self, diamond):
        assert diamond.successors((0,)) == frozenset({(1,), (2,)})
        assert diamond.successors((3,)) == frozenset()

    def test_has_transition(self, diamond):
        assert diamond.has_transition((0,), (1,))
        assert not diamond.has_transition((1,), (0,))

    def test_transition_iteration_and_count(self, diamond):
        assert sorted(diamond.transitions()) == sorted(
            [((0,), (1,)), ((0,), (2,)), ((1,), (3,)), ((2,), (3,))]
        )
        assert diamond.transition_count() == 4

    def test_labels(self, diamond):
        assert diamond.labels_of((0,), (1,)) == frozenset({"left"})
        assert diamond.labels_of((1,), (3,)) == frozenset()

    def test_terminal_states(self, diamond):
        assert diamond.is_terminal((3,))
        assert not diamond.is_terminal((0,))
        assert diamond.terminal_states() == frozenset({(3,)})


class TestDerivedSystems:
    def test_with_initial_swaps_initial_only(self, diamond):
        other = diamond.with_initial([(1,)])
        assert other.initial == frozenset({(1,)})
        assert other.transition_count() == diamond.transition_count()

    def test_restricted_to_drops_cross_edges(self, diamond):
        sub = diamond.restricted_to([(0,), (1,)])
        assert sub.has_transition((0,), (1,))
        assert not sub.has_transition((0,), (2,))
        assert not sub.has_transition((1,), (3,))
        assert sub.initial == frozenset({(0,)})

    def test_restricted_keeps_labels_inside(self, diamond):
        sub = diamond.restricted_to([(0,), (1,)])
        assert sub.labels_of((0,), (1,)) == frozenset({"left"})

    def test_without_self_loops(self, schema):
        system = System(schema, [((0,), (0,)), ((0,), (1,))], initial=[])
        stripped = system.without_self_loops()
        assert not stripped.has_transition((0,), (0,))
        assert stripped.has_transition((0,), (1,))

    def test_reachable(self, diamond):
        assert diamond.reachable() == frozenset({(0,), (1,), (2,), (3,)})

    def test_reachable_from_subset(self, diamond):
        assert diamond.reachable_from([(1,)]) == frozenset({(1,), (3,)})


class TestComputations:
    def test_all_maximal_computations_of_diamond(self, diamond):
        runs = set(diamond.computations((0,), max_length=10))
        assert runs == {((0,), (1,), (3,)), ((0,), (2,), (3,))}

    def test_bounded_prefix_of_cycle(self, schema):
        system = System(schema, [((0,), (1,)), ((1,), (0,))], initial=[])
        runs = list(system.computations((0,), max_length=3))
        assert runs == [((0,), (1,), (0,))]

    def test_max_length_must_be_positive(self, diamond):
        with pytest.raises(ValueError):
            list(diamond.computations((0,), 0))

    def test_is_computation_maximal_vs_prefix(self, diamond):
        assert diamond.is_computation([(0,), (1,), (3,)])
        assert not diamond.is_computation([(0,), (1,)])
        assert diamond.is_computation([(0,), (1,)], require_maximal=False)

    def test_is_computation_rejects_non_transition(self, diamond):
        assert not diamond.is_computation([(0,), (3,)], require_maximal=False)

    def test_is_computation_rejects_empty_and_invalid(self, diamond):
        assert not diamond.is_computation([])
        assert not diamond.is_computation([(9,)], require_maximal=False)

    def test_random_computation_stops_at_terminal(self, diamond):
        run = diamond.random_computation((0,), 10, random.Random(0))
        assert run[0] == (0,)
        assert run[-1] == (3,)
        assert len(run) == 3


class TestEquality:
    def test_equality_ignores_name_and_labels(self, schema):
        a = System(schema, [((0,), (1,))], initial=[(0,)], name="a",
                   labels={((0,), (1,)): ["x"]})
        b = System(schema, [((0,), (1,))], initial=[(0,)], name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_transitions(self, schema):
        a = System(schema, [((0,), (1,))], initial=[(0,)])
        b = System(schema, [((0,), (2,))], initial=[(0,)])
        assert a != b

    def test_inequality_on_initial(self, schema):
        a = System(schema, [((0,), (1,))], initial=[(0,)])
        b = System(schema, [((0,), (1,))], initial=[(1,)])
        assert a != b


class TestSuccessorsClosure:
    def test_distances(self, diamond):
        distances = successors_closure(diamond, (0,), max_depth=5)
        assert distances == {(0,): 0, (1,): 1, (2,): 1, (3,): 2}

    def test_depth_bound(self, diamond):
        distances = successors_closure(diamond, (0,), max_depth=1)
        assert (3,) not in distances

    def test_negative_depth_rejected(self, diamond):
        with pytest.raises(ValueError):
            successors_closure(diamond, (0,), -1)
