"""Unit tests for campaign cross-cell early stopping.

The stopping rule under test: a cell class (same system, size,
scheduler, injector) settles once its last ``window`` outcomes in grid
order are identical; the remaining seeds of a settled class become
first-class ``earlystop`` results without executing; the rule is
deterministic across worker counts (classes dispatch as single batch
tasks that run in grid order); and a resumed campaign counts its
checkpoint-restored *executed* outcomes as evidence while ignoring
restored ``earlystop`` rows (decisions are not evidence).
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignConfig,
    CellResult,
    CellSpec,
    CellStatus,
    build_grid,
    run_campaign,
)
from repro.campaign.earlystop import ConvergenceDetector, class_key
from repro.core.errors import SimulationError
from repro.parallel import parallel_available


def cell(seed_index, system="dijkstra3", n=3):
    return CellSpec(
        "simulate", system, n, "random", "corrupt-all", seed_index
    )


def grid(seeds=4):
    return build_grid(
        systems=("dijkstra3",), sizes=(3,), schedulers=("random",),
        injectors=("corrupt-all",), seeds=seeds,
    )


def quick_config(**overrides):
    defaults = dict(steps=2000, deadline=30.0, retries=1, seed=7)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestClassKey:
    def test_key_drops_only_the_seed_index(self):
        assert class_key(cell(0)) == class_key(cell(5))
        assert class_key(cell(0, system="dijkstra4")) != class_key(cell(0))
        assert class_key(cell(0, n=4)) != class_key(cell(0, n=3))


class TestDetector:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(0)

    def test_settles_after_window_identical_outcomes(self):
        detector = ConvergenceDetector(2)
        detector.observe(cell(0), CellStatus.CONVERGED)
        assert detector.settled(cell(1)) is None
        detector.observe(cell(1), CellStatus.CONVERGED)
        assert detector.settled(cell(2)) == "converged"

    def test_mixed_outcomes_do_not_settle(self):
        detector = ConvergenceDetector(2)
        detector.observe(cell(0), CellStatus.CONVERGED)
        detector.observe(cell(1), CellStatus.TIMEOUT)
        assert detector.settled(cell(2)) is None
        # The window slides: two fresh identical outcomes settle it.
        detector.observe(cell(2), CellStatus.TIMEOUT)
        assert detector.settled(cell(3)) == "timeout"

    def test_classes_are_tracked_independently(self):
        detector = ConvergenceDetector(1)
        detector.observe(cell(0), CellStatus.CONVERGED)
        assert detector.settled(cell(1, system="dijkstra4")) is None
        assert detector.settled(cell(1)) == "converged"

    def test_earlystop_outcomes_are_not_evidence(self):
        detector = ConvergenceDetector(1)
        detector.observe(cell(0), CellStatus.EARLYSTOP)
        assert detector.settled(cell(1)) is None


class TestConfig:
    def test_nonpositive_window_rejected(self):
        with pytest.raises(SimulationError):
            CampaignConfig(early_stop=0)

    def test_window_is_off_by_default(self):
        assert CampaignConfig().early_stop is None


class TestSequentialEarlyStop:
    def test_settled_class_stops_executing(self):
        cells = grid(seeds=4)
        campaign = run_campaign(cells, quick_config(early_stop=2))
        statuses = [r.status for r in campaign.results]
        # dijkstra3 n=3 converges under every seed: two executed
        # outcomes settle the class, the tail early-stops.
        assert statuses[:2] == [CellStatus.CONVERGED, CellStatus.CONVERGED]
        assert statuses[2:] == [CellStatus.EARLYSTOP, CellStatus.EARLYSTOP]

    def test_earlystop_results_are_first_class(self):
        campaign = run_campaign(grid(seeds=3), quick_config(early_stop=2))
        stopped = [
            r for r in campaign.results if r.status is CellStatus.EARLYSTOP
        ]
        assert len(stopped) == 1
        result = stopped[0]
        assert result.attempts == 0
        assert result.seconds == 0.0
        assert "settled at 'converged'" in result.detail
        assert class_key(grid()[0]) in result.detail
        # Round-trips through the checkpoint payload like any result.
        assert CellResult.from_payload(result.to_payload()) == result

    def test_no_early_stop_without_the_flag(self):
        campaign = run_campaign(grid(seeds=3), quick_config())
        assert all(
            r.status is not CellStatus.EARLYSTOP for r in campaign.results
        )

    def test_wide_window_never_stops_a_short_class(self):
        campaign = run_campaign(grid(seeds=3), quick_config(early_stop=3))
        assert all(
            r.status is CellStatus.CONVERGED for r in campaign.results
        )

    def test_earlystop_counter_and_event_emitted(self, tmp_path):
        from repro.obs import Recorder

        recorder = Recorder(kind="test")
        run_campaign(
            grid(seeds=3), quick_config(early_stop=2),
            instrumentation=recorder,
        )
        record = recorder.record()
        assert record.counters["campaign.earlystop"] == 1
        events = [e for e in record.events if e.name == "campaign.earlystop"]
        assert len(events) == 1
        assert "settled" in events[0].fields["detail"]


def stub_converged(cell, config):
    return CellResult(cell.cell_id(), CellStatus.CONVERGED, 1, 0.001)


class TestResume:
    def test_restored_outcomes_count_as_evidence(self, tmp_path):
        checkpoint = tmp_path / "cells.jsonl"
        cells = grid(seeds=4)
        ran_first = []

        def interrupting(cell, config):
            if len(ran_first) == 2:
                raise KeyboardInterrupt
            ran_first.append(cell.cell_id())
            return stub_converged(cell, config)

        first = run_campaign(
            cells, quick_config(checkpoint=checkpoint),
            executor=interrupting,
        )
        assert first.interrupted and first.executed == 2

        ran_second = []

        def counting(cell, config):
            ran_second.append(cell.cell_id())
            return stub_converged(cell, config)

        # The two restored converged outcomes are enough evidence for
        # window=2: the remaining seeds early-stop without executing.
        campaign = run_campaign(
            cells, quick_config(checkpoint=checkpoint, early_stop=2),
            resume=True, executor=counting,
        )
        assert ran_second == []
        assert campaign.skipped == 2
        assert [r.status for r in campaign.results[2:]] == [
            CellStatus.EARLYSTOP, CellStatus.EARLYSTOP
        ]

    def test_restored_earlystop_rows_are_not_evidence(self, tmp_path):
        checkpoint = tmp_path / "cells.jsonl"
        cells = grid(seeds=4)
        first = run_campaign(
            cells, quick_config(checkpoint=checkpoint, early_stop=2),
            executor=stub_converged,
        )
        assert [r.status for r in first.results] == [
            CellStatus.CONVERGED, CellStatus.CONVERGED,
            CellStatus.EARLYSTOP, CellStatus.EARLYSTOP,
        ]
        # Drop the final checkpoint row, leaving [converged, converged,
        # earlystop] restored and the last seed pending.  If the
        # restored earlystop row counted as evidence, the window-2
        # trail would read (converged, earlystop) — unsettled — and
        # the pending cell would execute.  Ignored correctly, the
        # trail is (converged, converged): settled, no execution.
        lines = checkpoint.read_text(encoding="utf-8").splitlines()
        checkpoint.write_text(
            "\n".join(lines[:-1]) + "\n", encoding="utf-8"
        )

        ran = []

        def counting(cell, config):
            ran.append(cell.cell_id())
            return stub_converged(cell, config)

        campaign = run_campaign(
            cells, quick_config(checkpoint=checkpoint, early_stop=2),
            resume=True, executor=counting,
        )
        assert ran == []
        assert campaign.skipped == 3
        assert campaign.results[-1].status is CellStatus.EARLYSTOP


@pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)
class TestParallelEarlyStop:
    def test_parallel_matches_sequential(self):
        cells = build_grid(
            systems=("dijkstra3", "dijkstra4"), sizes=(3,),
            schedulers=("random",), injectors=("corrupt-all",), seeds=4,
        )
        sequential = run_campaign(cells, quick_config(early_stop=2))
        parallel = run_campaign(
            cells, quick_config(early_stop=2, workers=2)
        )

        def stable(result):  # everything but the wall clock
            payload = result.to_payload()
            payload.pop("seconds")
            return payload

        assert [stable(r) for r in sequential.results] == [
            stable(r) for r in parallel.results
        ]

    def test_parallel_resume_uses_restored_evidence(self, tmp_path):
        checkpoint = tmp_path / "cells.jsonl"
        cells = grid(seeds=4)
        ran = []

        def interrupting(cell, config):
            if len(ran) == 2:
                raise KeyboardInterrupt
            ran.append(cell.cell_id())
            return stub_converged(cell, config)

        run_campaign(
            cells, quick_config(checkpoint=checkpoint),
            executor=interrupting,
        )
        campaign = run_campaign(
            cells,
            quick_config(checkpoint=checkpoint, early_stop=2, workers=2),
            resume=True,
        )
        assert campaign.skipped == 2
        assert [r.status for r in campaign.results[2:]] == [
            CellStatus.EARLYSTOP, CellStatus.EARLYSTOP
        ]
