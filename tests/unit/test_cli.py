"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TOY = """
program toy
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""

BROKEN = """
program broken
var x : mod 3
action spin :: x == 1 --> x := 2
action back :: x == 2 --> x := 1
action stay :: x == 0 --> x := 0
init x == 0
"""

# A specification with the same terminal structure as TOY (the
# stabilization check matches maximality, so a spec that self-loops
# where the program halts would be a different behaviour).
WRAPPER_SPEC = """
program spec
var x : mod 3
action heal.1 :: x == 1 --> x := 0
action heal.2 :: x == 2 --> x := 0
init x == 0
"""


@pytest.fixture
def toy_path(tmp_path):
    path = tmp_path / "toy.gcl"
    path.write_text(TOY)
    return str(path)


@pytest.fixture
def broken_path(tmp_path):
    path = tmp_path / "broken.gcl"
    path.write_text(BROKEN)
    return str(path)


class TestCheck:
    def test_self_stabilizing_program_exits_zero(self, toy_path, capsys):
        assert main(["check", toy_path]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_divergent_program_exits_one(self, broken_path, capsys):
        assert main(["check", broken_path]) == 1
        out = capsys.readouterr().out
        assert "FAILS" in out

    def test_check_against_spec(self, toy_path, tmp_path, capsys):
        spec = tmp_path / "spec.gcl"
        spec.write_text(WRAPPER_SPEC)
        assert main(["check", toy_path, "--spec", str(spec)]) == 0

    def test_fairness_flag(self, broken_path):
        assert main(["check", broken_path, "--fairness", "strong"]) == 1

    def test_missing_file_exits_two(self, capsys):
        assert main(["check", "/nonexistent/prog.gcl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.gcl"
        bad.write_text("program !!!")
        assert main(["check", str(bad)]) == 2


class TestRefines:
    def test_program_refines_itself(self, toy_path, capsys):
        assert main(["refines", toy_path, toy_path]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_relation_choices(self, toy_path):
        for relation in ("init", "everywhere", "convergence",
                         "everywhere-eventually"):
            assert main(["refines", toy_path, toy_path,
                         "--relation", relation]) == 0

    def test_non_refinement_exits_one(self, toy_path, broken_path):
        assert main(["refines", broken_path, toy_path]) == 1


class TestRing:
    @pytest.mark.parametrize("system", ["dijkstra3", "dijkstra4", "c1"])
    def test_unfair_verifications(self, system, capsys):
        assert main(["ring", system, "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "fairness assumption: none" in out
        assert "HOLDS" in out

    def test_c2_composite_defaults_to_strong(self, capsys):
        assert main(["ring", "c2-composed", "-n", "3"]) == 0
        assert "fairness assumption: strong" in capsys.readouterr().out

    def test_c3_composed_verifies(self):
        assert main(["ring", "c3-composed", "-n", "3"]) == 0

    def test_bare_c3_fails_honestly(self, capsys):
        assert main(["ring", "c3", "-n", "3"]) == 1
        assert "FAILS" in capsys.readouterr().out

    def test_kstate_below_threshold_fails(self):
        assert main(["ring", "kstate", "-n", "5", "-k", "3"]) == 1

    def test_kstate_default_k(self):
        assert main(["ring", "kstate", "-n", "4"]) == 0

    def test_explicit_fairness_override(self):
        # BTR composite-free abstract ring is trivially stabilizing to
        # itself from its own initial states... the bare btr target:
        assert main(["ring", "btr", "-n", "3", "--fairness", "none"]) == 1


class TestSimulateAndRender:
    def test_simulate_prints_trace(self, toy_path, capsys):
        assert main(["simulate", toy_path, "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "initial: x=0" in out
        assert "total:" in out

    def test_render_roundtrips(self, toy_path, capsys):
        assert main(["render", toy_path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("program toy")
        from repro.gcl import parse_program

        assert parse_program(out).compile() == parse_program(TOY).compile()

    def test_parser_tree_builds(self):
        parser = build_parser()
        args = parser.parse_args(["check", "x.gcl", "--fairness", "weak"])
        assert args.command == "check"
        assert args.fairness == "weak"

    def test_simulate_seed_changes_nothing_deterministic(self, toy_path, capsys):
        # The toy program deadlocks immediately from its initial state,
        # so any seed yields the same (empty) run — but the flag must
        # be accepted and the run complete.
        assert main(["simulate", toy_path, "--steps", "5", "--seed", "99"]) == 0
        assert "total: 0 steps" in capsys.readouterr().out


class TestObservability:
    def test_check_obs_out_then_report(self, toy_path, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["check", toy_path, "--obs-out", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "run: check" in rendered
        assert "check.states.enumerated" in rendered
        assert "check.fixpoint.iterations" in rendered
        assert "check.core" in rendered  # phase timing
        assert "check.verdict" in rendered

    def test_check_obs_records_exact_state_count(self, toy_path, tmp_path):
        from repro.obs import load_jsonl

        out = tmp_path / "run.jsonl"
        main(["check", toy_path, "--obs-out", str(out)])
        (record,) = load_jsonl(out)
        # TOY has one mod-3 variable: exactly 3 states enumerated.
        assert record.counters["check.states.enumerated"] == 3
        assert record.meta["program"] == toy_path

    def test_refines_obs_out(self, toy_path, tmp_path, capsys):
        from repro.obs import load_jsonl

        out = tmp_path / "ref.jsonl"
        assert main(["refines", toy_path, toy_path, "--obs-out", str(out)]) == 0
        (record,) = load_jsonl(out)
        assert record.kind == "refines"
        assert "refine.transitions.exact" in record.counters

    def test_ring_obs_out(self, tmp_path):
        from repro.obs import load_jsonl

        out = tmp_path / "ring.jsonl"
        assert main(["ring", "dijkstra3", "-n", "3", "--obs-out", str(out)]) == 0
        (record,) = load_jsonl(out)
        assert record.kind == "ring"
        assert record.meta["system"] == "dijkstra3"
        assert record.counters["check.states.enumerated"] > 0

    def test_simulate_obs_out_logs_seed(self, toy_path, tmp_path):
        from repro.obs import load_jsonl

        out = tmp_path / "sim.jsonl"
        assert main(
            ["simulate", toy_path, "--steps", "5", "--seed", "17",
             "--obs-out", str(out)]
        ) == 0
        (record,) = load_jsonl(out)
        assert record.kind == "simulate"
        assert record.meta["seed"] == 17

    def test_simulate_trace_out_and_report(self, tmp_path, capsys):
        from repro.simulation.trace import Trace

        spin = tmp_path / "spin.gcl"
        spin.write_text(
            "program spin\n"
            "var x : mod 2\n"
            "action flip0 :: x == 0 --> x := 1\n"
            "action flip1 :: x == 1 --> x := 0\n"
            "init x == 0\n"
        )
        trace_out = tmp_path / "trace.jsonl"
        assert main(
            ["simulate", str(spin), "--steps", "4", "--trace-out",
             str(trace_out)]
        ) == 0
        restored = Trace.from_jsonl(trace_out.read_text())
        assert restored.step_count() == 4
        capsys.readouterr()
        assert main(["report", str(trace_out)]) == 0
        rendered = capsys.readouterr().out
        assert "trace: 4 events" in rendered
        assert "steps: 4" in rendered

    def test_report_on_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 0
        assert "no run records" in capsys.readouterr().out

    def test_report_on_malformed_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken json")
        assert main(["report", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_missing_file_exits_two(self, capsys):
        assert main(["report", "/nonexistent/run.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_failing_check_still_writes_record(self, broken_path, tmp_path):
        from repro.obs import load_jsonl

        out = tmp_path / "run.jsonl"
        assert main(["check", broken_path, "--obs-out", str(out)]) == 1
        (record,) = load_jsonl(out)
        verdicts = [e for e in record.events if e.name == "check.verdict"]
        assert verdicts and verdicts[0].fields["holds"] is False


class TestNumericValidation:
    """Bad numeric arguments die at parse time with a clear message."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "x.gcl", "--steps", "0"],
            ["simulate", "x.gcl", "--steps", "-5"],
            ["simulate", "x.gcl", "--seed", "-1"],
            ["simulate", "x.gcl", "--tail", "-2"],
            ["simulate", "x.gcl", "--steps", "many"],
            ["ring", "dijkstra3", "-n", "2"],
            ["ring", "kstate", "-n", "4", "-k", "1"],
            ["campaign", "--seeds", "0"],
            ["campaign", "--seed", "-1"],
            ["campaign", "--steps", "0"],
            ["campaign", "--faults", "0"],
            ["campaign", "--deadline", "0"],
            ["campaign", "--deadline", "-1.5"],
            ["campaign", "--retries", "-1"],
            ["campaign", "--state-budget", "0"],
            ["campaign", "--sizes", "2"],
        ],
    )
    def test_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err or "expected a" in err

    def test_valid_arguments_still_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--seed", "0", "--steps", "10", "--deadline", "0.5"]
        )
        assert args.seed == 0 and args.steps == 10 and args.deadline == 0.5


class TestCampaignCommand:
    def test_smoke_grid_exits_zero(self, capsys):
        assert main(["campaign", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "campaign summary" in out
        assert "dijkstra4 n=3" in out and "dijkstra3 n=3" in out

    def test_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "campaign.jsonl"
        argv = [
            "campaign", "--systems", "dijkstra3", "--sizes", "3",
            "--seeds", "1", "--steps", "500",
            "--checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        assert checkpoint.exists()
        capsys.readouterr()
        # Without --resume an existing checkpoint is refused ...
        assert main(argv) == 2
        assert "resume" in capsys.readouterr().err
        # ... with it, every cell is skipped.
        assert main(argv + ["--resume"]) == 0
        assert "resumed 1" in capsys.readouterr().out

    def test_campaign_obs_out(self, tmp_path):
        from repro.obs import load_jsonl

        out = tmp_path / "campaign-obs.jsonl"
        argv = [
            "campaign", "--systems", "dijkstra3", "--sizes", "3",
            "--seeds", "1", "--steps", "500", "--obs-out", str(out),
        ]
        assert main(argv) == 0
        (record,) = load_jsonl(out)
        assert record.kind == "campaign"
        assert record.counters.get("campaign.cells.executed") == 1
