"""Recorder concurrency and deterministic record merging."""

import threading

import pytest

from repro.obs import (
    EventRecord,
    Recorder,
    RunRecord,
    RunRecordError,
    SpanStats,
    loads_jsonl,
    merge_records,
)
from repro.obs.registry import GaugeStats, HistogramStats
from repro.obs.trace import SpanNode


class TestRecorderThreadSafety:
    def _hammer(self, work, threads: int = 8) -> None:
        barrier = threading.Barrier(threads)

        def run() -> None:
            barrier.wait()
            work()

        pool = [threading.Thread(target=run) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

    def test_concurrent_counter_updates_sum_exactly(self):
        recorder = Recorder()
        per_thread = 2000

        def work() -> None:
            for _ in range(per_thread):
                recorder.count("c")

        self._hammer(work, threads=8)
        assert recorder.counter("c") == 8 * per_thread

    def test_concurrent_histogram_updates_lose_nothing(self):
        recorder = Recorder()
        per_thread = 2000

        def work() -> None:
            for value in range(per_thread):
                recorder.observe("h", value % 7)

        self._hammer(work, threads=8)
        stats = recorder.record().histograms["h"]
        assert stats.count == 8 * per_thread
        assert sum(stats.counts) == 8 * per_thread

    def test_spans_on_other_threads_become_roots(self):
        # Nesting state is per-thread: a span opened on a worker thread
        # while the main thread has one open must NOT become its child.
        recorder = Recorder()
        with recorder.span("main.outer"):
            self._hammer(
                lambda: recorder.span("worker.inner").__enter__().__exit__(
                    None, None, None
                ),
                threads=4,
            )
        record = recorder.record()
        workers = [n for n in record.tree if n.name == "worker.inner"]
        assert len(workers) == 4
        assert all(node.parent == -1 for node in workers)
        (outer,) = [n for n in record.tree if n.name == "main.outer"]
        assert outer.parent == -1


def _record(
    base: float,
    kind: str = "worker",
    counters=None,
    events=(),
    tree=(),
    gauges=None,
    histograms=None,
    wall: float = 1.0,
) -> RunRecord:
    return RunRecord(
        kind=kind,
        counters=dict(counters or {}),
        gauges=dict(gauges or {}),
        histograms=dict(histograms or {}),
        events=list(events),
        tree=list(tree),
        wall_seconds=wall,
        wall_base=base,
    )


class TestMergeRecords:
    def test_counters_sum(self):
        merged = merge_records(
            [
                _record(10.0, counters={"a": 1, "b": 2}),
                _record(11.0, counters={"a": 4}),
            ]
        )
        assert merged.counters == {"a": 5, "b": 2}

    def test_merge_is_commutative(self):
        a = _record(
            10.0,
            counters={"x": 1},
            events=[EventRecord("e", 0.5, {"n": 1})],
            gauges={"g": GaugeStats(7.0, 0.3)},
            histograms={"h": HistogramStats((2.0,), (1, 0), 1.0, 1)},
            tree=[SpanNode("s", 0.0, 0.5, -1, {})],
        )
        b = _record(
            10.2,
            counters={"x": 2},
            events=[EventRecord("e", 0.1, {"n": 2})],
            gauges={"g": GaugeStats(9.0, 0.4)},
            histograms={"h": HistogramStats((2.0,), (0, 1), 3.0, 1)},
            tree=[SpanNode("s", 0.1, 0.2, -1, {})],
        )
        ab = merge_records([a, b])
        ba = merge_records([b, a])
        assert ab.to_dict() == ba.to_dict()

    def test_events_interleave_on_absolute_time(self):
        a = _record(10.0, events=[EventRecord("a", 0.9, {})])
        b = _record(10.5, events=[EventRecord("b", 0.1, {})])
        merged = merge_records([a, b])
        # b's event happens at absolute 10.6, before a's at 10.9... no:
        # a's at 10.9 is later, so order is b (10.6), a (10.9).
        assert [event.name for event in merged.events] == ["b", "a"]
        assert merged.events[0].at == pytest.approx(0.6)
        assert merged.events[1].at == pytest.approx(0.9)

    def test_gauges_keep_latest_absolute_sample(self):
        a = _record(10.0, gauges={"g": GaugeStats(1.0, 0.9)})  # abs 10.9
        b = _record(10.5, gauges={"g": GaugeStats(2.0, 0.2)})  # abs 10.7
        merged = merge_records([a, b])
        assert merged.gauges["g"].value == 1.0

    def test_wall_envelope_covers_all_records(self):
        merged = merge_records(
            [_record(10.0, wall=1.0), _record(10.8, wall=1.0)]
        )
        assert merged.wall_base == 10.0
        assert merged.wall_seconds == pytest.approx(1.8)

    def test_tree_parent_links_stay_valid(self):
        a = _record(
            10.0,
            tree=[
                SpanNode("a.root", 0.0, 1.0, -1, {}),
                SpanNode("a.child", 0.1, 0.5, 0, {}),
            ],
        )
        b = _record(
            10.5,
            tree=[
                SpanNode("b.root", 0.0, 1.0, -1, {}),
                SpanNode("b.child", 0.1, 0.5, 0, {}),
            ],
        )
        merged = merge_records([a, b])
        by_name = {node.name: node for node in merged.tree}
        assert by_name["a.child"].parent == merged.tree.index(
            by_name["a.root"]
        )
        assert by_name["b.child"].parent == merged.tree.index(
            by_name["b.root"]
        )
        assert by_name["b.root"].start == pytest.approx(0.5)

    def test_empty_merge_rejected(self):
        with pytest.raises(RunRecordError):
            merge_records([])

    def test_diverging_histogram_bounds_raise_record_error(self):
        a = _record(10.0, histograms={"h": HistogramStats((2.0,), (1, 0), 1.0, 1)})
        b = _record(11.0, histograms={"h": HistogramStats((4.0,), (1, 0), 1.0, 1)})
        with pytest.raises(RunRecordError):
            merge_records([a, b])


class TestAbsorb:
    def test_absorb_rebases_worker_onto_parent_timeline(self):
        parent = Recorder(kind="check", wall=lambda: 100.0)
        worker = RunRecord(
            kind="worker",
            counters={"parallel.worker.batches": 3},
            events=[EventRecord("w.done", 0.25, {})],
            tree=[SpanNode("w.span", 0.1, 0.2, -1, {})],
            spans={"w.span": SpanStats(0.2, 1)},
            wall_base=102.0,
        )
        parent.absorb(worker)
        record = parent.record()
        assert record.counters["parallel.worker.batches"] == 3
        (event,) = [e for e in record.events if e.name == "w.done"]
        assert event.at == pytest.approx(2.25)
        (node,) = [n for n in record.tree if n.name == "w.span"]
        assert node.start == pytest.approx(2.1)
        assert node.parent == -1
        assert record.spans["w.span"].calls == 1

    def test_absorb_matches_merge_records_counters(self):
        workers = [
            _record(100.0 + i, counters={"c": i + 1}, kind="worker")
            for i in range(3)
        ]
        parent = Recorder(kind="check", wall=lambda: 100.0)
        for worker in workers:
            parent.absorb(worker)
        merged = merge_records(
            [RunRecord(kind="check", wall_base=100.0), *workers]
        )
        assert parent.record().counters == merged.counters

    def test_absorbed_record_round_trips_through_jsonl(self):
        parent = Recorder(kind="check", wall=lambda: 100.0)
        parent.count("parent.own", 1)
        parent.absorb(
            _record(101.0, counters={"w": 2}, kind="worker")
        )
        text = "\n".join(parent.record().to_jsonl_lines())
        (loaded,) = loads_jsonl(text)
        assert loaded.counters == {"parent.own": 1, "w": 2}
        assert loaded.wall_base == 100.0
