"""Unit tests for adaptive tier selection and its persistence.

The contract under test: the size rule respects its thresholds at the
exact boundaries; risky history promotes to THOROUGH and a clean
streak demotes one tier; a forced ``--tier`` wins except where the
LIGHT sampler is structurally unavailable; the ledger and manifest
survive damage by starting empty (advisory data never breaks a run);
and the LIGHT Monte-Carlo estimate is a pure function of its seed.
"""

from __future__ import annotations

import json

import pytest

from repro.gcl.parser import parse_program
from repro.obs import Recorder
from repro.parallel import program_fingerprint
from repro.tiering import (
    DEFAULT_THRESHOLDS,
    LEDGER_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
    MAX_OUTCOMES,
    Manifest,
    ManifestEntry,
    RiskLedger,
    Tier,
    TierThresholds,
    light_convergence_estimate,
    select_tier,
    spec_cells,
)

TOY = """
program toy
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""

# Three mod-4096 variables: 2^36 states, far above the packed-engine
# ceiling, so the LIGHT sampler cannot intern this schema.  The size
# is computed from the domains, never enumerated, so the program is
# free to construct.
UNPACKABLE = """
program big
var a : mod 4096
var b : mod 4096
var c : mod 4096
action t :: a != 0 --> a := 0
init a == 0
"""


def toy():
    return parse_program(TOY)


def clean(n):
    """A history of n clean passes."""
    return [{"holds": True, "partial": False, "tier": "thorough"}] * n


class TestSpecCells:
    def test_cells_are_states_times_actions_plus_vars(self):
        program = toy()
        # 3 states, 1 action + 1 variable.
        assert spec_cells(program) == 3 * 2

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            TierThresholds(thorough_max_cells=0)
        with pytest.raises(ValueError):
            TierThresholds(thorough_max_cells=100, light_min_cells=100)
        with pytest.raises(ValueError):
            TierThresholds(standard_state_budget=0)
        with pytest.raises(ValueError):
            TierThresholds(risk_window=0)


class TestSizeRule:
    """Boundary behaviour of the purely size-based base tier."""

    def test_at_the_thorough_ceiling_is_thorough(self):
        # toy() has exactly 6 cells; a ceiling of 6 includes it.
        thresholds = TierThresholds(thorough_max_cells=6, light_min_cells=7)
        decision = select_tier(toy(), thresholds=thresholds)
        assert decision.tier is Tier.THOROUGH
        assert decision.base is Tier.THOROUGH

    def test_one_past_the_ceiling_is_standard(self):
        thresholds = TierThresholds(thorough_max_cells=5, light_min_cells=7)
        decision = select_tier(toy(), thresholds=thresholds)
        assert decision.tier is Tier.STANDARD
        assert decision.base is Tier.STANDARD

    def test_at_the_light_floor_is_light(self):
        thresholds = TierThresholds(thorough_max_cells=5, light_min_cells=6)
        decision = select_tier(toy(), thresholds=thresholds)
        assert decision.tier is Tier.LIGHT
        assert decision.base is Tier.LIGHT

    def test_default_thresholds_put_the_toy_in_thorough(self):
        decision = select_tier(toy())
        assert decision.tier is Tier.THOROUGH
        assert decision.cells == 6
        assert decision.states == 3


class TestHistoryRules:
    STANDARD = TierThresholds(thorough_max_cells=5, light_min_cells=100)

    def test_recent_failure_promotes_to_thorough(self):
        history = clean(3) + [
            {"holds": False, "partial": False, "tier": "standard"}
        ]
        decision = select_tier(
            toy(), history=history, thresholds=self.STANDARD
        )
        assert decision.tier is Tier.THOROUGH
        assert decision.base is Tier.STANDARD
        assert "failed" in decision.reason

    def test_recent_partial_promotes_to_thorough(self):
        history = [{"holds": True, "partial": True, "tier": "standard"}]
        decision = select_tier(
            toy(), history=history, thresholds=self.STANDARD
        )
        assert decision.tier is Tier.THOROUGH
        assert "PARTIAL" in decision.reason

    def test_verdict_flap_promotes_to_thorough(self):
        history = [
            {"holds": False, "partial": False, "tier": "thorough"},
            {"holds": True, "partial": False, "tier": "thorough"},
        ]
        decision = select_tier(
            toy(), history=history, thresholds=self.STANDARD
        )
        assert decision.tier is Tier.THOROUGH

    def test_old_failure_outside_the_window_is_forgiven(self):
        thresholds = TierThresholds(
            thorough_max_cells=5, light_min_cells=100,
            risk_window=2, demote_streak=50,
        )
        history = [
            {"holds": False, "partial": False, "tier": "standard"}
        ] + clean(2)
        decision = select_tier(toy(), history=history, thresholds=thresholds)
        assert decision.tier is Tier.STANDARD

    def test_clean_streak_demotes_one_tier(self):
        thresholds = TierThresholds(
            thorough_max_cells=5, light_min_cells=100, demote_streak=3
        )
        decision = select_tier(
            toy(), history=clean(3), thresholds=thresholds
        )
        assert decision.base is Tier.STANDARD
        assert decision.tier is Tier.LIGHT
        assert "demoted" in decision.reason

    def test_short_streak_does_not_demote(self):
        thresholds = TierThresholds(
            thorough_max_cells=5, light_min_cells=100, demote_streak=3
        )
        decision = select_tier(
            toy(), history=clean(2), thresholds=thresholds
        )
        assert decision.tier is Tier.STANDARD


class TestForcedTier:
    def test_forced_tier_wins_over_size_and_history(self):
        history = [{"holds": False, "partial": False, "tier": "thorough"}]
        decision = select_tier(toy(), history=history, forced=Tier.LIGHT)
        assert decision.tier is Tier.LIGHT
        assert "forced" in decision.reason

    def test_forced_light_on_unpackable_schema_degrades_to_standard(self):
        decision = select_tier(parse_program(UNPACKABLE), forced=Tier.LIGHT)
        assert decision.tier is Tier.STANDARD
        assert "sampler unavailable" in decision.reason

    def test_huge_unpackable_spec_base_light_also_degrades(self):
        decision = select_tier(parse_program(UNPACKABLE))
        assert decision.base is Tier.LIGHT
        assert decision.tier is Tier.STANDARD


class TestSelectionTelemetry:
    def test_decision_emits_reasoned_event_and_counter(self):
        recorder = Recorder(kind="test")
        select_tier(toy(), label="specs/toy.gcl", instrumentation=recorder)
        record = recorder.record()
        assert record.counters["tier.select.thorough"] == 1
        events = [e for e in record.events if e.name == "tier.select"]
        assert len(events) == 1
        fields = events[0].fields
        assert fields["spec"] == "specs/toy.gcl"
        assert fields["tier"] == "thorough"
        assert fields["base"] == "thorough"
        assert fields["cells"] == 6
        assert "ceiling" in fields["reason"]


class TestRiskLedger:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = RiskLedger(path)
        ledger.record(
            "a.gcl", holds=True, partial=False, tier="thorough",
            fingerprint="f1",
        )
        ledger.save()
        reloaded = RiskLedger(path)
        assert len(reloaded) == 1
        (outcome,) = reloaded.history("a.gcl")
        assert outcome["holds"] is True
        assert outcome["tier"] == "thorough"
        assert outcome["fingerprint"] == "f1"

    def test_history_is_bounded(self, tmp_path):
        ledger = RiskLedger(tmp_path / "ledger.json")
        for index in range(MAX_OUTCOMES + 5):
            ledger.record(
                "a.gcl", holds=True, partial=False, tier="thorough",
                fingerprint=f"f{index}",
            )
        history = ledger.history("a.gcl")
        assert len(history) == MAX_OUTCOMES
        assert history[-1]["fingerprint"] == f"f{MAX_OUTCOMES + 4}"

    def test_damaged_file_starts_empty_and_flags_stale(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{broken", encoding="utf-8")
        ledger = RiskLedger(path)
        assert len(ledger) == 0
        assert ledger.stale

    def test_unknown_schema_starts_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(
            json.dumps({"v": LEDGER_SCHEMA_VERSION + 1, "specs": {}}),
            encoding="utf-8",
        )
        ledger = RiskLedger(path)
        assert len(ledger) == 0
        assert ledger.stale

    def test_forget_drops_a_spec(self, tmp_path):
        ledger = RiskLedger(tmp_path / "ledger.json")
        ledger.record(
            "a.gcl", holds=True, partial=False, tier="thorough",
            fingerprint="f1",
        )
        ledger.forget("a.gcl")
        assert ledger.history("a.gcl") == ()


class TestManifest:
    PARAMS = {"fairness": "none", "seed": 0}

    def entry(self, fingerprint="f1", tier="thorough"):
        return ManifestEntry(
            fingerprint=fingerprint, tier=tier, holds=True, text="toy: HOLDS"
        )

    def test_round_trip_and_diff_unchanged(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = Manifest(path)
        manifest.store("a.gcl", self.entry(), self.PARAMS)
        manifest.save()
        reloaded = Manifest(path)
        diff = reloaded.diff({"a.gcl": "f1"}, self.PARAMS)
        assert diff.unchanged == ["a.gcl"]
        assert not diff.changed and not diff.added and not diff.removed
        assert not diff.params_changed

    def test_fingerprint_move_invalidates_one_entry(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.json")
        manifest.store("a.gcl", self.entry(), self.PARAMS)
        manifest.store("b.gcl", self.entry("f2"), self.PARAMS)
        diff = manifest.diff({"a.gcl": "f1", "b.gcl": "moved"}, self.PARAMS)
        assert diff.unchanged == ["a.gcl"]
        assert diff.changed == ["b.gcl"]

    def test_params_change_invalidates_every_entry(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.json")
        manifest.store("a.gcl", self.entry(), self.PARAMS)
        diff = manifest.diff({"a.gcl": "f1"}, {"fairness": "weak", "seed": 0})
        assert diff.params_changed
        assert diff.changed == ["a.gcl"]
        assert not diff.unchanged

    def test_added_and_removed_paths(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.json")
        manifest.store("gone.gcl", self.entry(), self.PARAMS)
        diff = manifest.diff({"new.gcl": "f9"}, self.PARAMS)
        assert diff.added == ["new.gcl"]
        assert diff.removed == ["gone.gcl"]

    def test_empty_manifest_never_reports_params_changed(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.json")
        diff = manifest.diff({"a.gcl": "f1"}, self.PARAMS)
        assert not diff.params_changed
        assert diff.added == ["a.gcl"]

    def test_damaged_file_starts_empty_and_flags_stale(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("not json at all", encoding="utf-8")
        manifest = Manifest(path)
        assert len(manifest) == 0
        assert manifest.stale

    def test_schema_bump_discards_the_whole_file(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(
                {
                    "v": MANIFEST_SCHEMA_VERSION + 1,
                    "params": {},
                    "specs": {"a.gcl": self.entry().to_payload()},
                }
            ),
            encoding="utf-8",
        )
        manifest = Manifest(path)
        assert len(manifest) == 0
        assert manifest.stale

    def test_one_bad_entry_costs_only_itself(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(
                {
                    "v": MANIFEST_SCHEMA_VERSION,
                    "params": dict(self.PARAMS),
                    "specs": {
                        "good.gcl": self.entry().to_payload(),
                        "bad.gcl": {"fingerprint": "f2"},  # missing fields
                    },
                }
            ),
            encoding="utf-8",
        )
        manifest = Manifest(path)
        assert manifest.entry("good.gcl") is not None
        assert manifest.entry("bad.gcl") is None
        assert not manifest.stale


class TestLightEstimate:
    def test_estimate_is_deterministic_for_a_seed(self):
        program = toy()
        first = light_convergence_estimate(program, seed=11)
        second = light_convergence_estimate(program, seed=11)
        assert first == second

    def test_stabilizing_toy_likely_holds(self):
        verdict = light_convergence_estimate(toy(), seed=0)
        assert verdict.holds
        assert not verdict.is_partial
        assert "LIKELY HOLDS" in verdict.format()
        assert "simulated" in verdict.format()

    def test_counters_flow_to_instrumentation(self):
        recorder = Recorder(kind="test")
        verdict = light_convergence_estimate(
            toy(), samples=16, seed=3, instrumentation=recorder
        )
        record = recorder.record()
        assert record.counters["tier.light.samples"] == 16
        assert record.counters["tier.light.converged"] == verdict.converged

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            light_convergence_estimate(toy(), samples=0)
        with pytest.raises(ValueError):
            light_convergence_estimate(toy(), horizon=0)

    def test_default_thresholds_are_exported(self):
        assert DEFAULT_THRESHOLDS.thorough_max_cells == 1 << 18
        assert DEFAULT_THRESHOLDS.light_min_cells == 1 << 22

    def test_fingerprint_semantics_integration(self):
        # The manifest key combines the canonical fingerprint with the
        # check semantics; sanity-check the pieces compose.
        fp_none = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "none"}
        )
        fp_weak = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "weak"}
        )
        assert fp_none != fp_weak
