"""Unit tests for the convergence-depth profile."""

import pytest

from repro.checker import (
    behavioural_core,
    check_stabilization,
    convergence_profile,
    worst_case_convergence_steps,
)
from repro.core.state import StateSchema
from repro.core.system import System
from repro.rings import btr3_abstraction, btr_program, dijkstra_three_state


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(6))})


def sys_of(schema, pairs, initial=((0,),)):
    return System(schema, [((a,), (b,)) for a, b in pairs], initial=initial)


class TestOnToySystems:
    def test_depths_of_a_chain(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)]
        )
        core = behavioural_core(system, system)
        profile = convergence_profile(system, core)
        assert profile == {0: 3, 1: 1, 2: 1, 3: 1}

    def test_unreachable_states_bucketed_as_minus_one(self, schema):
        system = sys_of(schema, [(0, 1), (1, 2), (2, 0)])
        core = behavioural_core(system, system)
        profile = convergence_profile(system, core)
        assert profile[-1] == 3  # states 3, 4, 5 can never reach the core

    def test_buckets_partition_the_space(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (5, 4), (4, 3), (3, 0)]
        )
        core = behavioural_core(system, system)
        assert sum(convergence_profile(system, core).values()) == schema.size()

    def test_weak_fairness_skips_self_loops(self, schema):
        system = sys_of(
            schema, [(0, 1), (1, 2), (2, 0), (3, 3), (3, 0), (4, 0), (5, 0)]
        )
        core = behavioural_core(
            system.without_self_loops(), system
        )
        profile = convergence_profile(system, core, fairness="weak")
        assert profile.get(-1, 0) == 0


class TestOnDijkstra3:
    def test_min_depth_bounded_by_worst_case(self):
        n = 4
        system = dijkstra_three_state(n).compile()
        result = check_stabilization(
            system, btr_program(n).compile(), btr3_abstraction(n)
        )
        profile = convergence_profile(system, result.core)
        assert -1 not in profile
        max_min_depth = max(profile)
        assert max_min_depth <= result.worst_case_steps

    def test_core_bucket_matches_core_size(self):
        n = 4
        system = dijkstra_three_state(n).compile()
        result = check_stabilization(
            system, btr_program(n).compile(), btr3_abstraction(n)
        )
        profile = convergence_profile(system, result.core)
        assert profile[0] == len(result.core)
