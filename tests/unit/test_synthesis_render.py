"""Unit tests for rendering systems back to guarded-command programs."""

import pytest

from repro.core.errors import VerificationError
from repro.core.state import StateSchema
from repro.core.system import System
from repro.cli import main
from repro.gcl.domain import IntRange, ModularDomain
from repro.gcl.parser import parse_program
from repro.gcl.pretty import render_program
from repro.gcl.variable import Variable
from repro.synthesis import synthesize_wrapper, system_to_program

CASCADE = """
program cascade
var x.0, x.1, x.2 : mod 3
action copy.1 :: x.1 != x.0 --> x.1 := x.0
action copy.2 :: x.2 != x.1 --> x.2 := x.1
init x.0 == 0 && x.1 == 0 && x.2 == 0
"""


class TestSystemToProgram:
    def test_roundtrip_on_a_small_system(self):
        schema = StateSchema({"v": (0, 1, 2)})
        system = System(
            schema, [((1,), (0,)), ((2,), (0,))], initial=[(0,)], name="sys"
        )
        program = system_to_program(system, [Variable("v", IntRange(0, 2))])
        assert program.compile() == system

    def test_self_loops_roundtrip(self):
        schema = StateSchema({"v": (0, 1)})
        system = System(schema, [((0,), (0,)), ((1,), (0,))], initial=[(0,)])
        program = system_to_program(system, [Variable("v", IntRange(0, 1))])
        assert program.compile() == system

    def test_empty_system(self):
        schema = StateSchema({"v": (0, 1)})
        system = System(schema, [], initial=[])
        program = system_to_program(system, [Variable("v", IntRange(0, 1))])
        assert program.compile() == system

    def test_rejects_mismatched_declarations(self):
        schema = StateSchema({"v": (0, 1)})
        system = System(schema, [], initial=[])
        with pytest.raises(VerificationError):
            system_to_program(system, [Variable("w", IntRange(0, 1))])
        with pytest.raises(VerificationError):
            system_to_program(system, [Variable("v", IntRange(0, 2))])

    def test_synthesized_wrapper_roundtrips_through_gcl_text(self):
        """The full tool chain: synthesize -> render to program ->
        pretty-print -> reparse -> compile: same automaton."""
        program = parse_program(CASCADE)
        system = program.compile()
        result = synthesize_wrapper(system, system)
        wrapper_program = system_to_program(
            result.wrapper, list(program.variables), name="wrapper"
        )
        text = render_program(wrapper_program)
        reparsed = parse_program(text)
        assert reparsed.compile() == result.wrapper

    def test_rendered_wrapper_composes_back_to_a_verified_composite(self):
        from repro.checker import check_stabilization
        from repro.core.composition import box

        program = parse_program(CASCADE)
        system = program.compile()
        result = synthesize_wrapper(system, system)
        wrapper_program = system_to_program(
            result.wrapper, list(program.variables), name="wrapper"
        )
        composite = box(system, wrapper_program.compile())
        assert check_stabilization(composite, system).holds


class TestCliSynthesize:
    def test_prints_parseable_wrapper(self, tmp_path, capsys):
        path = tmp_path / "cascade.gcl"
        path.write_text(CASCADE)
        assert main(["synthesize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "synthesized" in captured.err
        wrapper = parse_program(captured.out)
        assert wrapper.actions

    def test_with_explicit_spec(self, tmp_path, capsys):
        path = tmp_path / "cascade.gcl"
        path.write_text(CASCADE)
        assert main(["synthesize", str(path), "--spec", str(path)]) == 0

    def test_empty_core_reports_cli_error(self, tmp_path, capsys):
        # The program halts everywhere while the spec never halts, so
        # no state of the program ever tracks the spec: empty core.
        frozen = tmp_path / "frozen.gcl"
        frozen.write_text("program frozen\nvar x : bool\ninit x == false")
        spec = tmp_path / "spec.gcl"
        spec.write_text(
            "program spec\nvar x : bool\n"
            "action flip :: true --> x := !x\ninit x == false"
        )
        assert main(["synthesize", str(frozen), "--spec", str(spec)]) == 2
        assert "error" in capsys.readouterr().err
