"""Unit tests for daemons and program compilation."""

import pytest

from repro.core.errors import GCLError
from repro.gcl.action import GuardedAction
from repro.gcl.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.gcl.domain import IntRange, ModularDomain
from repro.gcl.expr import Add, Const, Eq, Lt, Ne, Var
from repro.gcl.program import Program
from repro.gcl.semantics import compile_program
from repro.gcl.variable import Variable


@pytest.fixture
def two_counter_program():
    """Two counters that each tick toward 2 independently."""
    variables = [Variable("a", ModularDomain(3)), Variable("b", ModularDomain(3))]
    actions = [
        GuardedAction("tick.a", Ne(Var("a"), Const(2)), {"a": Add(Var("a"), Const(1))}),
        GuardedAction("tick.b", Ne(Var("b"), Const(2)), {"b": Add(Var("b"), Const(1))}),
    ]
    return Program("ticks", variables, actions, init=[{"a": 0, "b": 0}])


class TestCentralDaemon:
    def test_interleaves_one_action_per_step(self, two_counter_program):
        system = two_counter_program.compile(CentralDaemon())
        assert system.successors((0, 0)) == frozenset({(1, 0), (0, 1)})

    def test_labels_record_the_action(self, two_counter_program):
        system = two_counter_program.compile()
        assert system.labels_of((0, 0), (1, 0)) == frozenset({"tick.a"})

    def test_terminal_when_no_guard_holds(self, two_counter_program):
        system = two_counter_program.compile()
        assert system.is_terminal((2, 2))

    def test_initial_states_carried_over(self, two_counter_program):
        system = two_counter_program.compile()
        assert system.initial == frozenset({(0, 0)})


class TestSynchronousDaemon:
    def test_all_enabled_fire_together(self, two_counter_program):
        system = two_counter_program.compile(SynchronousDaemon())
        assert system.successors((0, 0)) == frozenset({(1, 1)})

    def test_single_enabled_action(self, two_counter_program):
        system = two_counter_program.compile(SynchronousDaemon())
        assert system.successors((2, 1)) == frozenset({(2, 2)})

    def test_name_gets_daemon_suffix(self, two_counter_program):
        system = two_counter_program.compile(SynchronousDaemon())
        assert "synchronous" in system.name

    def test_program_order_resolves_write_conflicts(self):
        variables = [Variable("x", IntRange(0, 5))]
        actions = [
            GuardedAction("first", Const(True), {"x": Const(1)}),
            GuardedAction("second", Const(True), {"x": Const(2)}),
        ]
        program = Program("conflict", variables, actions, init=[{"x": 0}])
        system = program.compile(SynchronousDaemon())
        assert system.successors((0,)) == frozenset({(2,)})


class TestDistributedDaemon:
    def test_includes_singletons_and_pairs(self, two_counter_program):
        system = two_counter_program.compile(DistributedDaemon(max_concurrency=2))
        assert system.successors((0, 0)) == frozenset({(1, 0), (0, 1), (1, 1)})

    def test_concurrency_one_equals_central(self, two_counter_program):
        central = two_counter_program.compile(CentralDaemon())
        distributed = two_counter_program.compile(
            DistributedDaemon(max_concurrency=1), name="ticks"
        )
        assert central == distributed

    def test_rejects_non_positive_concurrency(self):
        with pytest.raises(ValueError):
            DistributedDaemon(0)


class TestCompilationGuards:
    def test_out_of_domain_write_is_a_compile_error(self):
        variables = [Variable("x", IntRange(0, 1))]
        actions = [
            GuardedAction("grow", Lt(Var("x"), Const(5)), {"x": Add(Var("x"), Const(1))})
        ]
        program = Program("boom", variables, actions, init=[{"x": 0}])
        with pytest.raises(GCLError, match="out of domain"):
            compile_program(program)

    def test_keep_stutter_flag(self):
        variables = [Variable("x", IntRange(0, 1))]
        actions = [GuardedAction("idle", Eq(Var("x"), Const(0)), {"x": Const(0)})]
        program = Program("idle", variables, actions, init=[{"x": 0}])
        with_stutter = compile_program(program, keep_stutter=True)
        without = compile_program(program, keep_stutter=False)
        assert with_stutter.has_transition((0,), (0,))
        assert not without.has_transition((0,), (0,))

    def test_explicit_name_override(self, two_counter_program):
        system = two_counter_program.compile(name="custom")
        assert system.name == "custom"
