"""Unit tests for the content-addressed verification cache.

The contract: reformatting a program (whitespace, comments) must not
change its fingerprint; any semantic edit must; cache keys separate
checks by kind and parameters but never by execution-only knobs; and
the store survives corrupt entries by treating them as misses.
"""

from __future__ import annotations

from repro.obs import Recorder
from repro.parallel import (
    VerificationCache,
    cache_key,
    canonical_program_text,
    program_fingerprint,
)

TOY = """
program toy
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""

# The same program, reformatted: comments, blank lines, extra spaces.
TOY_REFORMATTED = """
# a comment the parser discards
program toy

var x    : mod 3

# another comment
action heal ::   x != 0   -->   x := 0
init   x == 0
"""

# One semantic edit: the action heals to 1, not 0.
TOY_EDITED = """
program toy
var x : mod 3
action heal :: x != 0 --> x := 1
init x == 0
"""


class TestFingerprint:
    def test_reformatting_does_not_change_the_fingerprint(self):
        assert program_fingerprint(TOY) == program_fingerprint(TOY_REFORMATTED)

    def test_semantic_edit_changes_the_fingerprint(self):
        assert program_fingerprint(TOY) != program_fingerprint(TOY_EDITED)

    def test_canonical_text_is_a_fixed_point(self):
        canonical = canonical_program_text(TOY)
        assert canonical_program_text(canonical) == canonical

    def test_parsed_program_and_source_agree(self):
        from repro.gcl.parser import parse_program

        assert program_fingerprint(parse_program(TOY)) == program_fingerprint(
            TOY
        )

    def test_keep_stutter_flip_changes_the_fingerprint(self):
        """Regression: the same source compiled under different
        semantics (keep_stutter, fairness) is a different transition
        system — under the old scheme both hashed identically and a
        cached verdict for one could be served for the other."""
        kept = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "none"}
        )
        dropped = program_fingerprint(
            TOY, semantics={"keep_stutter": False, "fairness": "none"}
        )
        assert kept != dropped

    def test_fairness_mode_changes_the_fingerprint(self):
        none = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "none"}
        )
        strong = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "strong"}
        )
        assert none != strong

    def test_semantics_mapping_order_is_canonical(self):
        a = program_fingerprint(
            TOY, semantics={"keep_stutter": True, "fairness": "none"}
        )
        b = program_fingerprint(
            TOY, semantics={"fairness": "none", "keep_stutter": True}
        )
        assert a == b

    def test_bare_fingerprint_differs_from_semantics_fingerprint(self):
        bare = program_fingerprint(TOY)
        tagged = program_fingerprint(TOY, semantics={"keep_stutter": True})
        assert bare != tagged
        assert program_fingerprint(TOY, semantics={}) == bare


class TestCacheKey:
    FP = program_fingerprint(TOY)

    def test_key_is_stable(self):
        params = {"fairness": "none", "stutter_insensitive": False}
        assert cache_key("check", [self.FP], params) == cache_key(
            "check", [self.FP], params
        )

    def test_key_ignores_param_order(self):
        a = cache_key("check", [self.FP], {"a": 1, "b": 2})
        b = cache_key("check", [self.FP], {"b": 2, "a": 1})
        assert a == b

    def test_key_separates_kinds_params_and_fingerprints(self):
        base = cache_key("check", [self.FP], {"fairness": "none"})
        assert cache_key("refines", [self.FP], {"fairness": "none"}) != base
        assert cache_key("check", [self.FP], {"fairness": "weak"}) != base
        other = program_fingerprint(TOY_EDITED)
        assert cache_key("check", [other], {"fairness": "none"}) != base

    def test_fingerprint_role_order_matters(self):
        other = program_fingerprint(TOY_EDITED)
        assert cache_key("refines", [self.FP, other], {}) != cache_key(
            "refines", [other, self.FP], {}
        )


class TestVerificationCache:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = VerificationCache(tmp_path / "cache")
        key = cache_key("check", [program_fingerprint(TOY)], {})
        assert cache.get(key) is None
        cache.put(key, {"holds": True, "text": "toy: HOLDS"})
        assert cache.get(key) == {"holds": True, "text": "toy: HOLDS"}
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        root = tmp_path / "cache"
        cache = VerificationCache(root)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        cache.put(key, {"holds": True})
        path = root / key[:2] / f"{key}.json"
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        root = tmp_path / "cache"
        cache = VerificationCache(root)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        path = root / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text('{"v": 0, "payload": {"holds": true}}', "utf-8")
        assert cache.get(key) is None

    def test_counters_flow_to_instrumentation(self, tmp_path):
        recorder = Recorder(kind="test")
        cache = VerificationCache(tmp_path / "cache", recorder)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        cache.get(key)
        cache.put(key, {"holds": False})
        cache.get(key)
        record = recorder.record()
        assert record.counters["cache.miss"] == 1
        assert record.counters["cache.store"] == 1
        assert record.counters["cache.hit"] == 1

    def test_empty_cache_has_length_zero(self, tmp_path):
        assert len(VerificationCache(tmp_path / "nonexistent")) == 0


class TestCacheIntegrity:
    """Digest-verified entries: damage reads as a miss, never a verdict."""

    def _entry_path(self, root, key):
        return root / key[:2] / f"{key}.json"

    def test_bit_flipped_entry_is_a_corrupt_miss(self, tmp_path):
        """Regression: flip one byte inside the stored payload.  The
        JSON may still parse, so only the digest check catches it —
        the entry must read as a miss and count ``cache.corrupt``."""
        root = tmp_path / "cache"
        recorder = Recorder(kind="test")
        cache = VerificationCache(root, recorder)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        cache.put(key, {"holds": True, "text": "toy: HOLDS"})
        path = self._entry_path(root, key)
        data = bytearray(path.read_bytes())
        # Flip a bit inside the payload text, not the JSON structure.
        flip_at = data.index(b"HOLDS")
        data[flip_at] ^= 0x01
        path.write_bytes(bytes(data))
        assert cache.get(key) is None
        counters = recorder.record().counters
        assert counters["cache.corrupt"] == 1
        assert counters["cache.miss"] == 1

    def test_recompute_overwrites_the_corrupt_entry(self, tmp_path):
        root = tmp_path / "cache"
        cache = VerificationCache(root)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        cache.put(key, {"holds": True})
        path = self._entry_path(root, key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert cache.get(key) is None
        cache.put(key, {"holds": True})
        assert cache.get(key) == {"holds": True}

    def test_missing_file_is_a_plain_miss_not_corruption(self, tmp_path):
        recorder = Recorder(kind="test")
        cache = VerificationCache(tmp_path / "cache", recorder)
        assert cache.get("00" + "a" * 62) is None
        counters = recorder.record().counters
        assert counters["cache.miss"] == 1
        assert "cache.corrupt" not in counters

    def test_key_mismatch_is_corrupt(self, tmp_path):
        """An entry filed under the wrong address (a botched copy, a
        renamed file) must not be served for the address it sits at."""
        root = tmp_path / "cache"
        cache = VerificationCache(root)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        other = cache_key("check", [program_fingerprint(TOY_EDITED)], {})
        cache.put(key, {"holds": True})
        good = self._entry_path(root, key)
        moved = self._entry_path(root, other)
        moved.parent.mkdir(parents=True, exist_ok=True)
        moved.write_bytes(good.read_bytes())
        assert cache.get(other) is None

    def test_version_2_entry_reads_as_stale_schema_not_corrupt(self, tmp_path):
        """A well-formed entry from before the digest field (schema v2)
        is drift left behind by an upgrade, not damage: it misses with
        ``cache.stale_schema`` and never touches ``cache.corrupt``."""
        root = tmp_path / "cache"
        recorder = Recorder(kind="test")
        cache = VerificationCache(root, recorder)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        path = self._entry_path(root, key)
        path.parent.mkdir(parents=True)
        path.write_text(
            '{"v": 2, "key": "%s", "payload": {"holds": true}}' % key,
            encoding="utf-8",
        )
        assert cache.get(key) is None
        record = recorder.record()
        assert record.counters["cache.stale_schema"] == 1
        assert record.counters["cache.miss"] == 1
        assert "cache.corrupt" not in record.counters
        stale = [e for e in record.events if e.name == "cache.stale_schema"]
        assert [e.fields.get("found") for e in stale] == [2]
        assert [e.fields.get("expected") for e in stale] == [3]

    def test_unknown_future_schema_is_still_corrupt_drift(self, tmp_path):
        """An unknown (e.g. future) schema version is not a *known*
        older layout, so it keeps the conservative corrupt marker."""
        root = tmp_path / "cache"
        recorder = Recorder(kind="test")
        cache = VerificationCache(root, recorder)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        path = self._entry_path(root, key)
        path.parent.mkdir(parents=True)
        path.write_text(
            '{"v": 99, "key": "%s", "payload": {"holds": true}}' % key,
            encoding="utf-8",
        )
        assert cache.get(key) is None
        record = recorder.record()
        assert "cache.stale_schema" not in record.counters
        events = [
            event.fields.get("reason")
            for event in record.events
            if event.name == "cache.corrupt"
        ]
        assert events == ["schema-drift"]

    def test_stale_v1_entry_with_wrong_key_is_corrupt(self, tmp_path):
        """Old-schema leniency does not extend to a mis-filed entry."""
        root = tmp_path / "cache"
        recorder = Recorder(kind="test")
        cache = VerificationCache(root, recorder)
        key = cache_key("check", [program_fingerprint(TOY)], {})
        path = self._entry_path(root, key)
        path.parent.mkdir(parents=True)
        path.write_text(
            '{"v": 1, "key": "somewhere-else", "payload": {"holds": true}}',
            encoding="utf-8",
        )
        assert cache.get(key) is None
        record = recorder.record()
        assert "cache.stale_schema" not in record.counters
        assert record.counters["cache.corrupt"] == 1

    def test_digest_is_order_insensitive(self):
        from repro.parallel.cache import payload_digest

        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )
