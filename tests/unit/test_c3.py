"""Unit tests for the new 3-state system C3 (paper, Section 6)."""

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_init_refinement,
    check_stabilization,
    compression_transitions,
)
from repro.core.composition import box_many
from repro.gcl.process import check_model_compliance
from repro.rings.btr import btr_program
from repro.rings.btr3 import dijkstra_three_state
from repro.rings.c3 import c3_aggressive_composed, c3_composed, c3_program
from repro.rings.mappings import btr3_abstraction


class TestStructure:
    def test_concrete_model_compliant(self):
        assert check_model_compliance(c3_program(4).processes) == []

    def test_differs_from_c2_as_an_automaton(self):
        from repro.rings.btr3 import c2_program

        assert c3_program(4).compile() != c2_program(4).compile()

    def test_init_refines_btr(self):
        n = 4
        result = check_init_refinement(
            c3_program(n).compile(), btr_program(n).compile(), btr3_abstraction(n)
        )
        assert result.holds, result.format()


class TestStuttering:
    def test_c3_stutters_in_illegitimate_states(self, c3_system):
        """The paper's Section 6 tau-step figure: some enabled moves do
        not change the state."""
        self_loops = [
            (s, t) for s, t in c3_system.transitions() if s == t
        ]
        assert self_loops

    def test_paper_stutter_scenario(self):
        """The figure's concrete instance: c = (3,2,1) mod-3 i.e.
        (0,2,1); process 1's up-move leaves the state unchanged."""
        program = c3_program(3)
        schema = program.schema()
        state = schema.pack({"c.0": 0, "c.1": 2, "c.2": 1})
        env = program.env_of(state)
        up1 = {a.name: a for a in program.actions}["up.1"]
        assert up1.enabled(env)
        assert up1.execute(env) == env

    def test_no_stutters_in_legitimate_states(self, c3_system):
        reachable = c3_system.reachable()
        assert all(
            s != t for s, t in c3_system.transitions() if s in reachable
        )


class TestLemma12:
    def test_literal_convergence_refinement_fails(self):
        """The reproduction's finding: [C3 <= BTR] does not hold
        literally — in multi-token states a single C3 step can realize
        *two* abstract token moves at once (opposite tokens crossing),
        and such compressions recur on bouncing cycles (EXPERIMENTS.md
        E10)."""
        n = 4
        result = check_convergence_refinement(
            c3_program(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
        )
        assert not result.holds
        assert result.witness.kind.value == "compression-on-cycle"

    def test_every_c3_step_is_realizable_as_a_btr_path(self):
        """The weaker (and true) transition-local claim behind the
        lemma: every C3 move maps to *some* BTR path — only the
        finite-omission bound fails."""
        n = 4
        alpha = btr3_abstraction(n)
        btr = btr_program(n).compile()
        c3 = c3_program(n).compile()
        from repro.checker.graph import shortest_path

        for source, target in c3.transitions():
            image_s, image_t = alpha(source), alpha(target)
            if image_s == image_t:
                continue
            assert (
                btr.has_transition(image_s, image_t)
                or shortest_path(btr, image_s, image_t, min_length=2) is not None
            )


class TestTheorem13:
    @pytest.mark.parametrize("n", [3, 4])
    def test_composite_stabilizes_under_strong_fairness(self, n):
        result = check_stabilization(
            c3_composed(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
            fairness="strong",
            compute_steps=False,
        )
        assert result.holds, result.format()

    def test_composite_not_stabilizing_unfair(self):
        """Unlike Dijkstra's merged system, the graybox composite keeps
        the crossing schedules and needs fairness."""
        n = 4
        result = check_stabilization(
            c3_composed(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
            fairness="weak",
            compute_steps=False,
        )
        assert not result.holds


class TestAggressiveComposite:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_equals_dijkstra_three_state(self, n):
        """The paper's closing claim of Section 6, verified as automaton
        equality: the if-then-else composite with the aggressive W2'
        *is* Dijkstra's 3-state system."""
        assert c3_aggressive_composed(n).compile() == dijkstra_three_state(n).compile()
