"""Unit tests for the mixed-radix state interner.

The contract: ``encode``/``decode`` are exact inverses over every ring
schema of the reproduction, codes follow the schema's lexicographic
enumeration order (first variable most significant), and malformed
states raise the schema's own errors — the interner never invents new
failure modes.
"""

from __future__ import annotations

import pytest

from repro.core.errors import StateSpaceError
from repro.core.state import StateSchema
from repro.kernel import (
    MAX_PACKED_STATES,
    StateInterner,
    can_pack,
    unpackable_reason,
)
from repro.rings import (
    btr3_program,
    btr4_program,
    btr_program,
    c1_program,
    c2_program,
    c3_composed,
    c3_program,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_program,
    w1_local_program,
    w1_program,
    w2_program,
    w2_refined_program,
)

# Every ring schema of the reproduction, at a small size.
RING_BUILDERS = [
    ("btr", lambda: btr_program(3)),
    ("btr3", lambda: btr3_program(3)),
    ("btr4", lambda: btr4_program(3)),
    ("c1", lambda: c1_program(3)),
    ("c2", lambda: c2_program(3)),
    ("c3", lambda: c3_program(3)),
    ("c3-composed", lambda: c3_composed(3)),
    ("dijkstra3", lambda: dijkstra_three_state(3)),
    ("dijkstra4", lambda: dijkstra_four_state(3)),
    ("kstate", lambda: kstate_program(3, 3)),
    ("utr", lambda: utr_program(3)),
    ("w1", lambda: w1_program(3)),
    ("w2", lambda: w2_program(3)),
    ("w1-local", lambda: w1_local_program(3)),
    ("w2-refined", lambda: w2_refined_program(3)),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name,builder", RING_BUILDERS, ids=[b[0] for b in RING_BUILDERS]
    )
    def test_every_ring_schema_round_trips_in_enumeration_order(
        self, name, builder
    ):
        """Codes are exactly the index in ``schema.states()`` order —
        the mixed-radix encoding with the first variable most
        significant — and decode inverts encode everywhere."""
        schema = builder().schema()
        interner = StateInterner(schema)
        assert interner.size == schema.size()
        for expected_code, state in enumerate(schema.states()):
            code = interner.encode(state)
            assert code == expected_code
            assert interner.decode(code) == state

    def test_decode_env_matches_schema_order(self):
        schema = StateSchema({"x": (0, 1), "y": ("a", "b", "c")})
        interner = StateInterner(schema)
        assert interner.decode_env(5) == {"x": 1, "y": "c"}

    def test_non_integer_domains_pack_fine(self):
        """Mixed-radix interning is positional, not arithmetic: any
        hashable domain values work."""
        schema = StateSchema({"mode": ("idle", "busy"), "t": (False, True)})
        interner = StateInterner(schema)
        states = list(schema.states())
        assert [interner.encode(s) for s in states] == list(range(4))
        assert [interner.decode(c) for c in range(4)] == states


class TestErrors:
    SCHEMA = StateSchema({"x": (0, 1, 2), "y": (0, 1)})

    def test_encode_rejects_out_of_domain_values(self):
        interner = StateInterner(self.SCHEMA)
        with pytest.raises(StateSpaceError) as caught:
            interner.encode((0, 7))
        # The interner regenerates the schema's own validation error.
        with pytest.raises(StateSpaceError) as reference:
            self.SCHEMA.validate((0, 7))
        assert str(caught.value) == str(reference.value)

    def test_encode_rejects_wrong_arity(self):
        interner = StateInterner(self.SCHEMA)
        with pytest.raises(StateSpaceError):
            interner.encode((0,))
        with pytest.raises(StateSpaceError):
            interner.encode((0, 1, 2))

    def test_decode_rejects_out_of_range_codes(self):
        interner = StateInterner(self.SCHEMA)
        with pytest.raises(ValueError, match=r"outside the state space"):
            interner.decode(interner.size)
        with pytest.raises(ValueError, match=r"outside the state space"):
            interner.decode(-1)


class TestPackability:
    def test_small_schemas_are_packable(self):
        schema = btr_program(4).schema()
        assert can_pack(schema)
        assert unpackable_reason(schema) is None

    def test_oversized_schema_is_refused_with_a_reason(self):
        # 2^23 states: one bit past the flag-array bound.
        schema = StateSchema({f"x{i}": (0, 1) for i in range(23)})
        assert schema.size() == 2 * MAX_PACKED_STATES
        assert not can_pack(schema)
        reason = unpackable_reason(schema)
        assert reason is not None
        assert str(MAX_PACKED_STATES) in reason

    def test_boundary_schema_is_packable(self):
        schema = StateSchema({f"x{i}": (0, 1) for i in range(22)})
        assert schema.size() == MAX_PACKED_STATES
        assert can_pack(schema)
