"""Unit tests for witnesses, check results, and verification reports."""

import pytest

from repro.checker.report import VerificationReport
from repro.checker.witnesses import CheckResult, Witness, WitnessKind
from repro.core.state import StateSchema


@pytest.fixture
def schema():
    return StateSchema({"x": (0, 1)})


class TestWitness:
    def test_format_includes_kind_and_message(self, schema):
        witness = Witness(
            WitnessKind.DIVERGENT_CYCLE, "spins forever", ((0,), (1,)), schema
        )
        text = witness.format()
        assert "divergent-cycle" in text
        assert "spins forever" in text
        assert "x=0" in text and "x=1" in text

    def test_format_without_schema_uses_repr(self):
        witness = Witness(WitnessKind.BAD_TERMINAL, "stuck", ((0,),))
        assert "(0,)" in witness.format()


class TestCheckResult:
    def test_truthiness(self):
        assert CheckResult(True, "p")
        assert not CheckResult(False, "p")

    def test_format_verdicts(self):
        assert "HOLDS" in CheckResult(True, "prop").format()
        assert "FAILS" in CheckResult(False, "prop").format()

    def test_format_includes_detail_and_witness(self, schema):
        result = CheckResult(
            False,
            "prop",
            Witness(WitnessKind.BAD_TERMINAL, "stuck", ((0,),), schema),
            detail="7 transitions",
        )
        text = result.format()
        assert "7 transitions" in text
        assert "stuck" in text

    def test_expect_passes_through_on_success(self):
        result = CheckResult(True, "p")
        assert result.expect() is result

    def test_expect_raises_with_rendered_failure(self):
        with pytest.raises(AssertionError, match="FAILS"):
            CheckResult(False, "p").expect()


class TestVerificationReport:
    def test_all_hold_and_failures(self):
        report = VerificationReport("demo")
        report.add("one", CheckResult(True, "one"))
        report.add("two", CheckResult(False, "two"))
        assert not report.all_hold()
        assert [entry.label for entry in report.failures()] == ["two"]

    def test_render_contains_rows_and_summary(self):
        report = VerificationReport("demo")
        report.add("alpha", CheckResult(True, "alpha"), note="n=3")
        report.add("beta", CheckResult(False, "beta"))
        text = report.render()
        assert "alpha" in text and "ok" in text
        assert "beta" in text and "FAIL" in text
        assert "1 of 2 checks FAILED" in text
        assert "(n=3)" in text

    def test_render_verbose_includes_bodies(self):
        report = VerificationReport("demo")
        report.add("alpha", CheckResult(True, "alpha", detail="42 states"))
        assert "42 states" in report.render(verbose=True)
        assert "42 states" not in report.render(verbose=False)

    def test_expect_all(self):
        good = VerificationReport("good")
        good.add("x", CheckResult(True, "x"))
        assert good.expect_all() is good
        bad = VerificationReport("bad")
        bad.add("x", CheckResult(False, "x"))
        with pytest.raises(AssertionError):
            bad.expect_all()

    def test_entries_are_ordered(self):
        report = VerificationReport("demo")
        for index in range(5):
            report.add(f"row{index}", CheckResult(True, "p"))
        assert [e.label for e in report.entries] == [f"row{i}" for i in range(5)]
