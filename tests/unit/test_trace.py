"""Unit tests for simulation traces."""

import pytest

from repro.simulation.trace import Trace, TraceEvent


@pytest.fixture
def trace():
    t = Trace({"x": 0})
    t.record("step", "inc", {"x": 1})
    t.record("fault", "corrupt x", {"x": 9})
    t.record("step", "dec", {"x": 8})
    t.record("stutter", "noop", {"x": 8})
    t.record("step", "dec", {"x": 7})
    return t


class TestTrace:
    def test_initial_is_defensive_copy(self):
        source = {"x": 0}
        trace = Trace(source)
        source["x"] = 99
        assert trace.initial == {"x": 0}

    def test_events_in_order(self, trace):
        assert [e.kind for e in trace.events] == [
            "step", "fault", "step", "stutter", "step",
        ]

    def test_final_environment(self, trace):
        assert trace.final() == {"x": 7}

    def test_final_of_empty_trace_is_initial(self):
        assert Trace({"x": 3}).final() == {"x": 3}

    def test_environments_includes_initial(self, trace):
        envs = trace.environments()
        assert envs[0] == {"x": 0}
        assert len(envs) == 6

    def test_step_and_fault_counts(self, trace):
        assert trace.step_count() == 4  # stutters count as steps
        assert trace.fault_count() == 1

    def test_action_labels_exclude_faults(self, trace):
        assert trace.action_labels() == ["inc", "dec", "noop", "dec"]

    def test_len(self, trace):
        assert len(trace) == 5


class TestStepsUntil:
    def test_immediately_true(self):
        trace = Trace({"x": 0})
        assert trace.steps_until(lambda env: env["x"] == 0) == 0

    def test_counts_steps_to_first_hit(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 8) == 1

    def test_fault_resets_the_clock(self, trace):
        # x == 1 holds before the fault only; after the reset it never
        # holds again, so the answer is None.
        assert trace.steps_until(lambda env: env["x"] == 1) is None

    def test_counts_from_last_fault(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 7) == 3

    def test_never_satisfied(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 42) is None
