"""Unit tests for simulation traces."""

import pytest

from repro.simulation.trace import Trace, TraceEvent


@pytest.fixture
def trace():
    t = Trace({"x": 0})
    t.record("step", "inc", {"x": 1})
    t.record("fault", "corrupt x", {"x": 9})
    t.record("step", "dec", {"x": 8})
    t.record("stutter", "noop", {"x": 8})
    t.record("step", "dec", {"x": 7})
    return t


class TestTrace:
    def test_initial_is_defensive_copy(self):
        source = {"x": 0}
        trace = Trace(source)
        source["x"] = 99
        assert trace.initial == {"x": 0}

    def test_events_in_order(self, trace):
        assert [e.kind for e in trace.events] == [
            "step", "fault", "step", "stutter", "step",
        ]

    def test_final_environment(self, trace):
        assert trace.final() == {"x": 7}

    def test_final_of_empty_trace_is_initial(self):
        assert Trace({"x": 3}).final() == {"x": 3}

    def test_environments_includes_initial(self, trace):
        envs = trace.environments()
        assert envs[0] == {"x": 0}
        assert len(envs) == 6

    def test_step_and_fault_counts(self, trace):
        assert trace.step_count() == 4  # stutters count as steps
        assert trace.fault_count() == 1

    def test_action_labels_exclude_faults(self, trace):
        assert trace.action_labels() == ["inc", "dec", "noop", "dec"]

    def test_len(self, trace):
        assert len(trace) == 5


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, trace):
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert restored.initial == trace.initial
        assert restored.events == trace.events
        assert restored.final() == trace.final()
        assert restored.step_count() == trace.step_count()
        assert restored.fault_count() == trace.fault_count()

    def test_empty_trace_round_trips(self):
        trace = Trace({"x": 3, "flag": True})
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert restored.initial == {"x": 3, "flag": True}
        assert len(restored) == 0

    def test_serialized_form_is_tagged_jsonl(self, trace):
        import json

        lines = trace.to_jsonl().splitlines()
        assert json.loads(lines[0])["t"] == "trace"
        assert all(
            json.loads(line)["t"] == "trace-event" for line in lines[1:]
        )
        assert len(lines) == 1 + len(trace.events)

    def test_all_from_jsonl_reads_several_traces(self, trace):
        text = trace.to_jsonl() + Trace({"x": 5}).to_jsonl()
        traces = Trace.all_from_jsonl(text)
        assert len(traces) == 2
        assert traces[1].initial == {"x": 5}

    def test_all_from_jsonl_skips_run_record_lines(self, trace):
        text = '{"t": "run", "kind": "simulate"}\n' + trace.to_jsonl()
        traces = Trace.all_from_jsonl(text)
        assert len(traces) == 1
        assert traces[0].events == trace.events

    def test_from_jsonl_requires_exactly_one_trace(self, trace):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            Trace.from_jsonl("")
        with pytest.raises(SimulationError):
            Trace.from_jsonl(trace.to_jsonl() + trace.to_jsonl())

    def test_orphan_event_line_rejected(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            Trace.all_from_jsonl(
                '{"t": "trace-event", "kind": "step", "label": "a", "env": {}}'
            )

    def test_malformed_json_rejected(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError):
            Trace.all_from_jsonl("{not json")


class TestStepsUntil:
    def test_immediately_true(self):
        trace = Trace({"x": 0})
        assert trace.steps_until(lambda env: env["x"] == 0) == 0

    def test_counts_steps_to_first_hit(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 8) == 1

    def test_fault_resets_the_clock(self, trace):
        # x == 1 holds before the fault only; after the reset it never
        # holds again, so the answer is None.
        assert trace.steps_until(lambda env: env["x"] == 1) is None

    def test_counts_from_last_fault(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 7) == 3

    def test_never_satisfied(self, trace):
        assert trace.steps_until(lambda env: env["x"] == 42) is None
