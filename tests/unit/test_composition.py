"""Unit tests for the box operator (repro.core.composition)."""

import pytest

from repro.core.composition import box, box_many
from repro.core.errors import CompositionError
from repro.core.state import StateSchema
from repro.core.system import System


@pytest.fixture
def schema():
    return StateSchema({"v": (0, 1, 2)})


@pytest.fixture
def base(schema):
    return System(schema, [((0,), (1,))], initial=[(0,)], name="base",
                  labels={((0,), (1,)): ["step"]})


@pytest.fixture
def wrapper(schema):
    return System(schema, [((2,), (0,))], initial=[], name="wrap",
                  labels={((2,), (0,)): ["recover"]})


class TestBox:
    def test_unions_transitions(self, base, wrapper):
        composite = box(base, wrapper)
        assert composite.has_transition((0,), (1,))
        assert composite.has_transition((2,), (0,))

    def test_wrapper_contributes_no_initial_states(self, base, wrapper):
        composite = box(base, wrapper)
        assert composite.initial == base.initial

    def test_initial_sets_union(self, schema, base):
        other = System(schema, [], initial=[(1,)], name="other")
        assert box(base, other).initial == frozenset({(0,), (1,)})

    def test_merges_labels(self, base, wrapper):
        composite = box(base, wrapper)
        assert composite.labels_of((0,), (1,)) == frozenset({"step"})
        assert composite.labels_of((2,), (0,)) == frozenset({"recover"})

    def test_label_union_on_shared_transition(self, schema):
        a = System(schema, [((0,), (1,))], initial=[], labels={((0,), (1,)): ["a"]})
        b = System(schema, [((0,), (1,))], initial=[], labels={((0,), (1,)): ["b"]})
        assert box(a, b).labels_of((0,), (1,)) == frozenset({"a", "b"})

    def test_default_name(self, base, wrapper):
        assert box(base, wrapper).name == "base [] wrap"

    def test_rejects_schema_mismatch(self, base):
        other = System(StateSchema({"w": (0, 1)}), [], initial=[])
        with pytest.raises(CompositionError):
            box(base, other)

    def test_commutative_as_automata(self, base, wrapper):
        assert box(base, wrapper) == box(wrapper, base)

    def test_idempotent(self, base):
        assert box(base, base) == base.with_name("x")  # equality ignores names

    def test_associative(self, schema, base, wrapper):
        third = System(schema, [((1,), (2,))], initial=[], name="third")
        left = box(box(base, wrapper), third)
        right = box(base, box(wrapper, third))
        assert left == right


class TestBoxMany:
    def test_folds_left(self, schema, base, wrapper):
        third = System(schema, [((1,), (2,))], initial=[], name="third")
        composite = box_many([base, wrapper, third], name="all")
        assert composite.name == "all"
        assert composite.transition_count() == 3

    def test_single_system(self, base):
        assert box_many([base]) == base

    def test_empty_rejected(self):
        with pytest.raises(CompositionError):
            box_many([])
