"""Unit tests for the ASCII ring visualizer."""

import random

import pytest

from repro.rings import dijkstra_three_state, kstate_program
from repro.rings.topology import Ring
from repro.simulation import (
    CorruptVariables,
    FaultSchedule,
    render_ring_row,
    render_trace,
    simulate,
)


class TestRenderRow:
    def test_btr_up_and_down_tokens(self):
        ring = Ring(4)
        env = {name: False for name in ring.token_variable_names()}
        env["ut.1"] = True
        env["dt.2"] = True
        assert render_ring_row(ring, env, "btr") == ".^v."

    def test_colocated_tokens_render_x(self):
        ring = Ring(4)
        env = {name: False for name in ring.token_variable_names()}
        env["ut.2"] = True
        env["dt.2"] = True
        assert render_ring_row(ring, env, "btr") == "..X."

    def test_kstate_privileges_render_star(self):
        ring = Ring(3)
        env = {"c.0": 0, "c.1": 0, "c.2": 0}  # uniform: bottom privileged
        assert render_ring_row(ring, env, "kstate") == "*.."

    def test_three_state_row_length(self):
        ring = Ring(6)
        program = dijkstra_three_state(6)
        env = program.env_of(next(program.initial_states()))
        row = render_ring_row(ring, env, "three")
        assert len(row) == 6
        assert row.count("v") == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            render_ring_row(Ring(3), {}, "bogus")


class TestRenderTrace:
    @pytest.fixture
    def trace(self):
        return simulate(
            dijkstra_three_state(6),
            60,
            rng=random.Random(1),
            faults=FaultSchedule([10], CorruptVariables(2)),
        )

    def test_header_and_initial_row(self, trace):
        text = render_trace(trace, Ring(6), "three")
        lines = text.splitlines()
        assert lines[0].strip().startswith("step")
        assert "(initial)" in lines[1]

    def test_fault_marked_in_gutter(self, trace):
        text = render_trace(trace, Ring(6), "three", only_changes=False)
        assert "  ! corrupt" in text

    def test_max_rows_elides(self, trace):
        text = render_trace(trace, Ring(6), "three", max_rows=3)
        assert "..." in text
        # header + initial + 3 rows + ellipsis
        assert len(text.splitlines()) <= 6

    def test_only_changes_skips_static_rows(self):
        trace = simulate(dijkstra_three_state(6), 40, rng=random.Random(2))
        dense = render_trace(trace, Ring(6), "three", only_changes=False)
        sparse = render_trace(trace, Ring(6), "three", only_changes=True)
        assert len(sparse.splitlines()) <= len(dense.splitlines())

    def test_every_row_shows_exactly_the_ring_width(self, trace):
        ring = Ring(6)
        text = render_trace(trace, ring, "three", only_changes=False)
        for line in text.splitlines()[1:]:
            if line.strip().startswith("..."):
                continue
            column = line[7 : 7 + ring.n_processes]
            assert len(column) == ring.n_processes
            assert set(column) <= set(".^vX*")
