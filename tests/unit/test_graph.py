"""Unit tests for the transition-graph algorithms."""

import pytest

from repro.checker.graph import (
    bounded_paths,
    edge_on_cycle,
    find_cycle_within,
    has_cycle_within,
    shortest_path,
    states_on_cycles,
    strongly_connected_components,
    terminal_states_within,
)
from repro.core.state import StateSchema
from repro.core.system import System


@pytest.fixture
def schema():
    return StateSchema({"v": tuple(range(8))})


def sys_of(schema, pairs, name="g"):
    return System(schema, [((a,), (b,)) for a, b in pairs], initial=[], name=name)


@pytest.fixture
def lasso(schema):
    """0 -> 1 -> 2 -> 3 -> 1 (a lasso), 4 isolated-ish, 5 -> 5 loop."""
    return sys_of(schema, [(0, 1), (1, 2), (2, 3), (3, 1), (4, 0), (5, 5)])


class TestShortestPath:
    def test_direct_edge(self, lasso):
        assert shortest_path(lasso, (0,), (1,)) == ((0,), (1,))

    def test_multi_hop(self, lasso):
        assert shortest_path(lasso, (0,), (3,)) == ((0,), (1,), (2,), (3,))

    def test_trivial_path_when_allowed(self, lasso):
        assert shortest_path(lasso, (2,), (2,)) == ((2,),)

    def test_min_length_forces_genuine_cycle(self, lasso):
        path = shortest_path(lasso, (1,), (1,), min_length=1)
        assert path == ((1,), (2,), (3,), (1,))

    def test_min_length_two_rejects_single_edge(self, lasso):
        # 0 -> 1 exists, but a length >= 2 realization must go around.
        path = shortest_path(lasso, (0,), (1,), min_length=2)
        assert path is not None
        assert len(path) >= 3

    def test_unreachable_returns_none(self, lasso):
        assert shortest_path(lasso, (1,), (0,)) is None

    def test_max_length_bound(self, lasso):
        assert shortest_path(lasso, (0,), (3,), max_length=2) is None

    def test_self_loop_min_length_one(self, lasso):
        assert shortest_path(lasso, (5,), (5,), min_length=1) == ((5,), (5,))


class TestSCC:
    def test_components_partition_edge_vertices(self, lasso):
        components = strongly_connected_components(lasso)
        flattened = sorted(state for comp in components for state in comp)
        assert flattened == sorted([(0,), (1,), (2,), (3,), (4,), (5,)])

    def test_cycle_is_one_component(self, lasso):
        components = strongly_connected_components(lasso)
        assert frozenset({(1,), (2,), (3,)}) in components

    def test_restricted_vertex_set(self, lasso):
        components = strongly_connected_components(lasso, [(1,), (2,)])
        assert all(len(c) == 1 for c in components)

    def test_reverse_topological_order(self, schema):
        chain = sys_of(schema, [(0, 1), (1, 2)])
        components = strongly_connected_components(chain)
        order = [next(iter(c)) for c in components]
        assert order.index((2,)) < order.index((0,))


class TestCycles:
    def test_states_on_cycles(self, lasso):
        assert states_on_cycles(lasso) == frozenset({(1,), (2,), (3,), (5,)})

    def test_self_loop_counts_as_cycle(self, lasso):
        assert (5,) in states_on_cycles(lasso)

    def test_edge_on_cycle(self, lasso):
        assert edge_on_cycle(lasso, (1,), (2,))
        assert not edge_on_cycle(lasso, (0,), (1,))

    def test_has_cycle_within_subset(self, lasso):
        assert has_cycle_within(lasso, [(1,), (2,), (3,)])
        assert not has_cycle_within(lasso, [(1,), (2,)])

    def test_find_cycle_returns_closed_path(self, lasso):
        cycle = find_cycle_within(lasso, [(1,), (2,), (3,)])
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 2

    def test_find_cycle_none_when_acyclic(self, lasso):
        assert find_cycle_within(lasso, [(0,), (4,)]) is None


class TestTerminalStates:
    def test_terminality_is_global(self, schema):
        graph = sys_of(schema, [(0, 1)])
        # 1 has no outgoing edges at all; 0 has one leaving the subset.
        assert terminal_states_within(graph, [(0,), (1,)]) == frozenset({(1,)})


class TestBoundedPaths:
    def test_enumerates_all_paths_up_to_bound(self, schema):
        diamond = sys_of(schema, [(0, 1), (0, 2), (1, 3), (2, 3)])
        paths = set(bounded_paths(diamond, (0,), 2))
        assert ((0,), (1,), (3,)) in paths
        assert ((0,), (2,), (3,)) in paths
        assert ((0,),) in paths

    def test_zero_bound_yields_start_only(self, lasso):
        assert list(bounded_paths(lasso, (0,), 0)) == [((0,),)]

    def test_negative_bound_rejected(self, lasso):
        with pytest.raises(ValueError):
            list(bounded_paths(lasso, (0,), -1))
