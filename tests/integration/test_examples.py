"""Integration: every example script runs cleanly end to end.

The examples double as the public tutorial, so a regression that
breaks one is a release blocker.  Each is imported as a module and its
``main()`` driven directly (no subprocess: assertion failures should
surface as test failures with tracebacks).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "derive_dijkstra3",
    "graybox_wrapper",
    "bidding_server",
    "fault_injection_sim",
    "synthesize_wrapper",
    "compile_and_repair",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_example_list_is_complete():
    """Every shipped example is exercised here."""
    shipped = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXAMPLES)
