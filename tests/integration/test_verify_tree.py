"""Integration tests for ``repro verify-tree`` incremental verification.

The acceptance contract under test: a THOROUGH-tier tree run produces
exactly the verdict blocks that direct ``repro check`` invocations
produce, in sorted path order; a warm re-run replays every verdict
from the manifest byte for byte while running **zero** engine
fixpoints; editing one spec re-verifies only that spec; removing a
spec drops its manifest entry; and worker counts never change stdout.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import load_tagged_lines
from repro.parallel import parallel_available

SPECS_DIR = pathlib.Path(__file__).parents[2] / "examples" / "specs"

STABLE = """
program toy{n}
var x : mod 3
action heal :: x != 0 --> x := 0
init x == 0
"""

BROKEN = """
program broken
var x : mod 3
action spin :: x == 1 --> x := 2
action back :: x == 2 --> x := 1
action stay :: x == 0 --> x := 0
init x == 0
"""


@pytest.fixture
def tree(tmp_path):
    """A small spec tree with a nested directory and a failing spec."""
    root = tmp_path / "specs"
    (root / "nested").mkdir(parents=True)
    (root / "a.gcl").write_text(STABLE.format(n="_a"))
    (root / "nested" / "b.gcl").write_text(STABLE.format(n="_b"))
    (root / "broken.gcl").write_text(BROKEN)
    return root


def run_tree(root, tmp_path, capsys, *extra):
    code = main(
        [
            "verify-tree", str(root),
            "--manifest", str(tmp_path / "state" / "manifest.json"),
            "--ledger", str(tmp_path / "state" / "ledger.json"),
            *extra,
        ]
    )
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDifferential:
    def test_thorough_tree_matches_direct_check_blocks(
        self, tmp_path, capsys
    ):
        """Ring-wide differential: every THOROUGH verify-tree verdict
        block over the shipped example specs is byte-identical to the
        direct ``repro check`` output, concatenated in sorted order."""
        expected = []
        for path in sorted(SPECS_DIR.rglob("*.gcl")):
            main(["check", str(path)])  # exit code irrelevant here
            expected.append(capsys.readouterr().out)
        code, out, err = run_tree(
            SPECS_DIR, tmp_path, capsys, "--tier", "thorough"
        )
        assert out == "".join(expected)
        # btr/c2/c3 genuinely fail self-stabilization under the
        # unfair daemon, so the tree exits 1 — never 2.
        assert code == 1
        assert err.count("[verified]") == 6

    def test_worker_count_does_not_change_stdout(self, tree, tmp_path, capsys):
        if not parallel_available():
            pytest.skip("no fork start method")
        code_one, out_one, _ = run_tree(
            tree, tmp_path, capsys, "--tier", "thorough"
        )
        # A fresh manifest path forces a second cold run.
        code_two, out_two, _ = run_tree(
            tree, tmp_path / "again", capsys,
            "--tier", "thorough", "--workers", "2",
        )
        assert out_one == out_two
        assert code_one == code_two == 1


class TestIncremental:
    def test_warm_run_replays_byte_identical_with_zero_fixpoints(
        self, tree, tmp_path, capsys
    ):
        cold_code, cold_out, cold_err = run_tree(
            tree, tmp_path, capsys, "--tier", "thorough",
            "--obs-out", str(tmp_path / "cold.jsonl"),
        )
        warm_code, warm_out, warm_err = run_tree(
            tree, tmp_path, capsys, "--tier", "thorough",
            "--obs-out", str(tmp_path / "warm.jsonl"),
        )
        assert warm_out == cold_out
        assert warm_code == cold_code == 1
        assert warm_err.count("[cached]") == 3
        assert "[verified]" not in warm_err
        assert "verified=0 replayed=3" in warm_err

        def counters(path):
            return {
                row["name"]: row["value"]
                for row in load_tagged_lines(path, "counter")
            }

        cold_counters = counters(tmp_path / "cold.jsonl")
        warm_counters = counters(tmp_path / "warm.jsonl")
        assert cold_counters.get("check.fixpoint.iterations", 0) > 0
        # The acceptance criterion: a warm run performs no engine work.
        assert not any(
            name.startswith(("check.", "kernel.")) for name in warm_counters
        )
        assert warm_counters["verify.replayed"] == 3
        assert warm_counters["verify.verified"] == 0

    def test_editing_one_spec_reverifies_only_that_spec(
        self, tree, tmp_path, capsys
    ):
        run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        # A semantic edit: toy_a now heals to 1 — and stops stabilizing.
        (tree / "a.gcl").write_text(
            STABLE.format(n="_a").replace("x := 0", "x := 1")
        )
        code, out, err = run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        assert err.count("[verified]") == 1
        assert "[verified] a.gcl" in err
        assert err.count("[cached]") == 2

    def test_reformatting_a_spec_stays_cached(self, tree, tmp_path, capsys):
        run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        source = (tree / "a.gcl").read_text()
        (tree / "a.gcl").write_text(
            "# a comment the parser discards\n" + source.replace(":=", " := ")
        )
        _, _, err = run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        assert "[verified]" not in err
        assert err.count("[cached]") == 3

    def test_removed_spec_drops_its_manifest_entry(
        self, tree, tmp_path, capsys
    ):
        run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        (tree / "broken.gcl").unlink()
        code, out, err = run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        assert "[removed] broken.gcl" in err
        assert code == 0  # only the stabilizing specs remain
        manifest = json.loads(
            (tmp_path / "state" / "manifest.json").read_text()
        )
        assert "broken.gcl" not in manifest["specs"]
        assert set(manifest["specs"]) == {"a.gcl", "nested/b.gcl"}

    def test_fairness_flip_invalidates_the_whole_manifest(
        self, tree, tmp_path, capsys
    ):
        run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        _, _, err = run_tree(
            tree, tmp_path, capsys, "--tier", "thorough",
            "--fairness", "weak",
        )
        assert err.count("[verified]") == 3
        assert "[cached]" not in err

    def test_forced_tier_change_reverifies_cached_entries(
        self, tree, tmp_path, capsys
    ):
        run_tree(tree, tmp_path, capsys, "--tier", "thorough")
        # The stored verdicts answer the THOROUGH question, not the
        # STANDARD one: a different forced tier must re-verify.
        _, _, err = run_tree(tree, tmp_path, capsys, "--tier", "standard")
        assert err.count("[verified]") == 3


class TestCliSurface:
    def test_missing_tree_is_a_usage_error(self, tmp_path, capsys):
        assert main(["verify-tree", str(tmp_path / "nowhere")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_all_passing_tree_exits_zero(self, tmp_path, capsys):
        root = tmp_path / "specs"
        root.mkdir()
        (root / "a.gcl").write_text(STABLE.format(n="_a"))
        assert main(["verify-tree", str(root)]) == 0

    def test_light_tier_marks_verdicts_as_simulated(
        self, tree, tmp_path, capsys
    ):
        code, out, err = run_tree(tree, tmp_path, capsys, "--tier", "light")
        assert "LIGHT tier, simulated" in out
        assert "tier=light" in err

    def test_obs_out_records_tier_selection_events(
        self, tree, tmp_path, capsys
    ):
        run_tree(
            tree, tmp_path, capsys, "--tier", "thorough",
            "--obs-out", str(tmp_path / "obs.jsonl"),
        )
        selections = [
            event
            for event in load_tagged_lines(tmp_path / "obs.jsonl", "event")
            if event["name"] == "tier.select"
        ]
        assert len(selections) == 3
        assert all(
            event["fields"]["tier"] == "thorough" for event in selections
        )
        assert all(
            "forced by --tier" in event["fields"]["reason"]
            for event in selections
        )
