"""Integration tests: the paper's derivation chains end to end.

Each test replays a whole section of the paper on a concrete ring
size, going through every artifact in order, exactly as the benchmark
harness does — these are the library-level contracts the experiments
rely on.
"""

import pytest

from repro.checker import (
    VerificationReport,
    check_convergence_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.core.composition import box_many
from repro.core.theorems import graybox_instance
from repro.gcl.process import check_model_compliance
from repro.rings import (
    btr3_abstraction,
    btr3_program,
    btr4_abstraction,
    btr4_program,
    btr_program,
    c1_program,
    c2_program,
    c3_aggressive_composed,
    c3_composed,
    c3_program,
    dijkstra_four_state,
    dijkstra_three_state,
    w1_local_program,
    w1_program,
    w2_program,
    w2_refined_program,
)


class TestSection4Chain:
    """BTR -> BTR4 -> C1 -> Dijkstra's 4-state."""

    @pytest.fixture(scope="class")
    def n(self):
        return 4

    def test_full_chain(self, n):
        report = VerificationReport(f"Section 4, n={n}")
        btr = btr_program(n).compile()
        alpha = btr4_abstraction(n)

        report.add(
            "BTR4 equivalent on legitimate part",
            check_init_refinement(btr4_program(n).compile(), btr, alpha),
        )
        c1 = c1_program(n).compile()
        report.add("Lemma 7: [C1 <= BTR]", check_convergence_refinement(c1, btr, alpha))
        report.add(
            "Theorem 8: C1 stabilizing to BTR (unfair)",
            check_stabilization(c1, btr, alpha, fairness="none"),
        )
        report.add(
            "Dijkstra 4-state stabilizing to BTR (unfair)",
            check_stabilization(
                dijkstra_four_state(n).compile(), btr, alpha, fairness="none"
            ),
        )
        report.expect_all()

    def test_model_refinement_story(self, n):
        """BTR4 violates the concrete model; C1 repairs every violation."""
        # BTR4 carries no process structure (it is abstract by nature);
        # its actions write far-side neighbours, which C1's do not.
        c1 = c1_program(n)
        assert check_model_compliance(c1.processes, writes_restricted=True) == []
        btr4_actions = {a.name: a for a in btr4_program(n).actions}
        c1_actions = {a.name: a for a in c1.actions}
        dropped = {
            name: btr4_actions[name].write_set() - c1_actions[name].write_set()
            for name in c1_actions
        }
        # every interior move dropped at least one neighbour write.
        for name, removed in dropped.items():
            if name.startswith(("up.", "down.")):
                assert removed, f"{name} should have commented-out writes"


class TestSection5Chain:
    """BTR -> BTR3 -> C2 + W1'' + W2' -> Dijkstra's 3-state."""

    @pytest.fixture(scope="class")
    def n(self):
        return 4

    def test_full_chain(self, n):
        report = VerificationReport(f"Section 5, n={n}")
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        w1 = w1_local_program(n).compile()
        w2 = w2_refined_program(n).compile()

        report.add(
            "BTR3 equivalent on legitimate part",
            check_init_refinement(btr3_program(n).compile(), btr, alpha),
        )
        report.add(
            "Lemma 9: BTR3 [] W1'' [] W2' stabilizing (strong fairness)",
            check_stabilization(
                box_many([btr3_program(n).compile(), w1, w2]),
                btr,
                alpha,
                fairness="strong",
                compute_steps=False,
            ),
        )
        report.add(
            "Theorem 11 composite stabilizing (strong fairness)",
            check_stabilization(
                box_many([c2_program(n).compile(), w1, w2]),
                btr,
                alpha,
                fairness="strong",
                compute_steps=False,
            ),
        )
        report.add(
            "Dijkstra 3-state stabilizing (unfair)",
            check_stabilization(
                dijkstra_three_state(n).compile(), btr, alpha, fairness="none"
            ),
        )
        report.expect_all()

    def test_worst_case_convergence_grows_with_n(self):
        steps = {}
        for n in (3, 4, 5):
            result = check_stabilization(
                dijkstra_three_state(n).compile(),
                btr_program(n).compile(),
                btr3_abstraction(n),
            )
            assert result.holds
            steps[n] = result.worst_case_steps
        assert steps[3] < steps[4] < steps[5]


class TestSection6Chain:
    """C3, the graybox reuse of the Section 5 wrappers, and the final
    equality with Dijkstra's 3-state system."""

    @pytest.fixture(scope="class")
    def n(self):
        return 4

    def test_graybox_composite_stabilizes(self, n):
        result = check_stabilization(
            c3_composed(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
            stutter_insensitive=True,
            fairness="strong",
            compute_steps=False,
        )
        assert result.holds, result.format()

    def test_same_wrappers_serve_c2_and_c3(self, n):
        """Graybox reusability: one wrapper pair, two implementations."""
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        w1 = w1_local_program(n).compile()
        w2 = w2_refined_program(n).compile()
        for implementation in (c2_program(n), c3_program(n)):
            composite = box_many([implementation.compile(), w1, w2])
            result = check_stabilization(
                composite,
                btr,
                alpha,
                stutter_insensitive=True,
                fairness="strong",
                compute_steps=False,
            )
            assert result.holds, f"{implementation.name}: {result.format()}"

    @pytest.mark.parametrize("n_processes", [3, 4, 5, 6])
    def test_aggressive_composite_equals_dijkstra3(self, n_processes):
        assert (
            c3_aggressive_composed(n_processes).compile()
            == dijkstra_three_state(n_processes).compile()
        )


class TestFairnessLandscape:
    """The reproduction's headline finding, summarized in one table:
    which system stabilizes under which daemon assumption."""

    def test_landscape_at_n4(self):
        n = 4
        btr = btr_program(n).compile()
        alpha3 = btr3_abstraction(n)
        alpha4 = btr4_abstraction(n)
        w1 = w1_local_program(n).compile()
        w2 = w2_refined_program(n).compile()

        systems = {
            "BTR[]W1[]W2": (
                box_many([btr, w1_program(n).compile(), w2_program(n).compile()]),
                None,
                False,
            ),
            "BTR3 composite": (
                box_many([btr3_program(n).compile(), w1, w2]),
                alpha3,
                False,
            ),
            "C2 composite": (
                box_many([c2_program(n).compile(), w1, w2]),
                alpha3,
                False,
            ),
            "C3 composite": (c3_composed(n).compile(), alpha3, True),
            "Dijkstra3": (dijkstra_three_state(n).compile(), alpha3, False),
            "Dijkstra4": (dijkstra_four_state(n).compile(), btr4_abstraction(n), False),
            "C1": (c1_program(n).compile(), alpha4, False),
        }
        needs_fairness = {
            "BTR[]W1[]W2": "strong",
            "BTR3 composite": "strong",
            "C2 composite": "strong",
            "C3 composite": "strong",
            "Dijkstra3": "none",
            "Dijkstra4": "none",
            "C1": "none",
        }
        for name, (system, alpha, stutter) in systems.items():
            weakest = needs_fairness[name]
            result = check_stabilization(
                system, btr, alpha, stutter_insensitive=stutter,
                fairness=weakest, compute_steps=False,
            )
            assert result.holds, f"{name} under {weakest}: {result.format()}"
            if weakest == "strong":
                result = check_stabilization(
                    system, btr, alpha, stutter_insensitive=stutter,
                    fairness="weak", compute_steps=False,
                )
                assert not result.holds, f"{name} should need strong fairness"
