"""Chaos tests for the shared-memory engine: faults must not leak.

The shared engine's cleanup contract is absolute: whatever happens to
its workers — a SIGKILL mid-shard, a supervisor-timeout reap, a task
quarantined onto the driver — the run must still produce the
byte-identical verdict **and** leave zero shm segments and zero spill
files behind.  A leaked ``/dev/shm`` segment is RAM gone until reboot,
which is why every test here sweeps the segment directory and the
run's spill parent after recovery.
"""

from __future__ import annotations

import os

import pytest

from repro.checker import check_stabilization
from repro.kernel.shared import using_memory_budget
from repro.kernel.shared.segments import shm_dir
from repro.kernel.vector import numpy_available
from repro.obs import Recorder
from repro.parallel import parallel_available
from repro.resilience import (
    FaultAction,
    FaultPlan,
    SupervisionPolicy,
    using_chaos,
    using_policy,
)
from repro.rings import kstate_program, utr_abstraction, utr_program

pytestmark = [
    pytest.mark.skipif(
        not parallel_available(), reason="no fork start method"
    ),
    pytest.mark.skipif(
        not numpy_available(), reason="the shared engine needs NumPy"
    ),
]

#: Fast retry schedule so injected faults do not slow the suite.
FAST = SupervisionPolicy(backoff_base=0.001, backoff_cap=0.005)


def _shm_leaks() -> list:
    # Segments owned by this process or by a dead driver are leaks; a
    # live concurrent run (xdist, a benchmark) owns its own segments.
    directory = shm_dir()
    if directory is None:
        return []
    leaks = []
    for name in os.listdir(directory):
        if not name.startswith("rs-"):
            continue
        try:
            owner = int(name.split("-")[1], 16)
        except (IndexError, ValueError):
            leaks.append(name)
            continue
        if owner == os.getpid():
            leaks.append(name)
            continue
        try:
            os.kill(owner, 0)
        except ProcessLookupError:
            leaks.append(name)
        except PermissionError:
            pass
    return sorted(leaks)


def _case():
    """3125 states: enough rounds and batch sizes to shard for real."""
    return kstate_program(5, 5), utr_program(5), utr_abstraction(5, 5)


def _baseline():
    concrete, spec, alpha = _case()
    return check_stabilization(concrete, spec, alpha, engine="vector")


def _chaotic_shared(tmp_path, recorder, workers=4):
    concrete, spec, alpha = _case()
    with using_memory_budget("1M", spill_dir=str(tmp_path),
                             parallel_min=64):
        return check_stabilization(
            concrete, spec, alpha, engine="shared", workers=workers,
            instrumentation=recorder,
        )


class TestWorkerDeathLeaksNothing:
    def test_killed_expand_worker_recovers_cleanly(self, tmp_path):
        """``shared_reachable`` shards frontier runs; killing one of
        its workers must cost a retry, not a bit of the visited set
        and not a segment."""
        import numpy as np

        from repro.kernel.shared import (
            SharedKernel,
            open_runtime,
            shared_reachable,
        )
        from repro.kernel.vector import as_vector_kernel, vector_reachable

        program = kstate_program(5, 5)
        vector = as_vector_kernel(program)
        # A 625-code source stripe: the initial states alone reach only
        # the legitimate orbit (too small to shard), but a wide stripe
        # makes every frontier round big enough to fan out.
        sources = np.arange(0, vector.size, 5, dtype=np.int64)
        expected = np.nonzero(vector_reachable(vector, sources))[0].tolist()
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="kill-worker", task=0, attempt=0,
                    phase="_expand_task",
                ),
            )
        )
        recorder = Recorder(kind="test")
        kernel = SharedKernel(program)
        with using_memory_budget("1M", spill_dir=str(tmp_path),
                                 parallel_min=64):
            with using_policy(FAST), using_chaos(plan):
                with open_runtime(
                    kernel, workers=4, instrumentation=recorder
                ) as runtime:
                    visited = shared_reachable(
                        kernel, sources, runtime, recorder
                    )
                    reached = [
                        int(code)
                        for chunk in visited.member_chunks(runtime.chunk)
                        for code in chunk.tolist()
                    ]
        assert reached == expected
        counters = recorder.record().counters
        assert counters["resilience.worker.death"] >= 1
        assert counters["resilience.task.retries"] >= 1
        assert _shm_leaks() == []
        assert sorted(tmp_path.iterdir()) == []

    def test_killed_core_round_worker_recovers_cleanly(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="kill-worker", task=0, attempt=0,
                    phase="_core_round_task",
                ),
            )
        )
        recorder = Recorder(kind="test")
        with using_policy(FAST), using_chaos(plan):
            chaotic = _chaotic_shared(tmp_path, recorder)
        assert chaotic.format() == _baseline().format()
        assert recorder.record().counters["resilience.worker.death"] >= 1
        assert _shm_leaks() == []
        assert sorted(tmp_path.iterdir()) == []

    def test_poison_every_attempt_quarantines_without_leaking(
        self, tmp_path
    ):
        """Killing every attempt forces the task inline onto the
        driver (where chaos worker faults are inert): same verdict,
        same empty segment directory."""
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="kill-worker", task=0, attempt="*",
                    phase="_core_round_task",
                ),
            )
        )
        policy = SupervisionPolicy(
            max_task_retries=1, backoff_base=0.001, backoff_cap=0.005
        )
        recorder = Recorder(kind="test")
        with using_policy(policy), using_chaos(plan):
            chaotic = _chaotic_shared(tmp_path, recorder, workers=2)
        assert chaotic.format() == _baseline().format()
        assert recorder.record().counters[
            "resilience.task.quarantined"
        ] >= 1
        assert _shm_leaks() == []
        assert sorted(tmp_path.iterdir()) == []


class TestSupervisorTimeoutLeaksNothing:
    def test_hung_worker_is_reaped_and_the_run_stays_clean(self, tmp_path):
        """A worker stalled past ``task_timeout`` is reaped like a
        crash; the retry must finish the shard and the reaped child's
        segments must be swept."""
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="delay-task", task=0, attempt=0,
                    phase="_core_round_task", seconds=0.5,
                ),
            )
        )
        policy = SupervisionPolicy(
            backoff_base=0.001, backoff_cap=0.005, task_timeout=0.1
        )
        recorder = Recorder(kind="test")
        with using_policy(policy), using_chaos(plan):
            chaotic = _chaotic_shared(tmp_path, recorder)
        assert chaotic.format() == _baseline().format()
        counters = recorder.record().counters
        assert counters["resilience.task.retries"] >= 1
        assert _shm_leaks() == []
        assert sorted(tmp_path.iterdir()) == []


class TestMmapVisitedChaos:
    def test_killed_worker_mid_page_keeps_mmap_bits_exact(self, tmp_path):
        """SIGKILL a worker while the visited set is an mmap file: the
        retry must read the driver's bits through the shared mapping
        and finish with the exact reachable set — and the mapped file
        must die with the spill directory."""
        import numpy as np

        from repro.kernel.shared import (
            MemoryContext,
            SharedKernel,
            open_runtime,
            shared_reachable,
        )
        from repro.kernel.vector import as_vector_kernel, vector_reachable

        program = kstate_program(5, 5)
        vector = as_vector_kernel(program)
        sources = np.arange(0, vector.size, 5, dtype=np.int64)
        expected = np.nonzero(vector_reachable(vector, sources))[0].tolist()
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="kill-worker", task=0, attempt=0,
                    phase="_expand_task",
                ),
            )
        )
        recorder = Recorder(kind="test")
        kernel = SharedKernel(program)
        # 3125 states need 391 flag bytes; a 4K budget (threshold 256)
        # forces the visited set onto the mmap rung.
        context = MemoryContext(
            budget_bytes=4096, spill_dir=str(tmp_path), parallel_min=64
        )
        with using_policy(FAST), using_chaos(plan):
            with open_runtime(
                kernel, workers=4, instrumentation=recorder,
                context=context,
            ) as runtime:
                visited = shared_reachable(
                    kernel, sources, runtime, recorder
                )
                reached = [
                    int(code)
                    for chunk in visited.member_chunks(runtime.chunk)
                    for code in chunk.tolist()
                ]
        assert reached == expected
        record = recorder.record()
        assert record.counters["resilience.worker.death"] >= 1
        assert record.counters["shm.visited.mmap_bytes"] >= 391
        backings = {
            event.fields["tag"]: event.fields["backing"]
            for event in record.events
            if event.name == "shm.visited"
        }
        assert backings.get("visited") == "mmap"
        assert _shm_leaks() == []
        assert sorted(tmp_path.iterdir()) == []
