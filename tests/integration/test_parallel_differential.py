"""Differential tests: the parallel checkers against the sequential ones.

The core invariant of :mod:`repro.parallel` is verdict identity: for
every system, spec, abstraction, fairness mode, and budget, the check
run with ``workers > 1`` must produce a *byte-identical* formatted
verdict — same holds/fails, same witness states, same counts.  These
tests enforce it on every ring system of the reproduction, on both
decision procedures, and through the CLI.
"""

from __future__ import annotations

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_stabilization,
)
from repro.parallel import parallel_available
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c3_composed,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)

# Every ring verification of the reproduction:
# (name, concrete, spec, alpha, fairness, stutter_insensitive)
RING_CASES = [
    (
        "dijkstra4-n3",
        lambda: dijkstra_four_state(3).compile(),
        lambda: btr_program(3).compile(),
        lambda: btr4_abstraction(3),
        "none", False,
    ),
    (
        "dijkstra3-n4",
        lambda: dijkstra_three_state(4).compile(),
        lambda: btr_program(4).compile(),
        lambda: btr3_abstraction(4),
        "none", False,
    ),
    (
        "c3-composed-n3",
        lambda: c3_composed(3).compile(),
        lambda: btr_program(3).compile(),
        lambda: btr3_abstraction(3),
        "strong", True,
    ),
    (
        "kstate-n4",
        lambda: kstate_program(4, 4).compile(),
        lambda: utr_program(4).compile(),
        lambda: utr_abstraction(4, 4),
        "none", False,
    ),
    (
        "btr-n4-control",  # the deliberate non-stabilizing control
        lambda: btr_program(4).compile(),
        lambda: btr_program(4).compile(),
        lambda: None,
        "none", False,
    ),
    (
        "kstate-n4-k3-refuted",  # K = n - 1 < n: a failing case
        lambda: kstate_program(4, 3).compile(),
        lambda: utr_program(4).compile(),
        lambda: utr_abstraction(4, 3),
        "none", False,
    ),
]


class TestStabilizationDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    @pytest.mark.parametrize("workers", [2, 4])
    def test_verdicts_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter, workers
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness
        )
        sequential = check_stabilization(concrete(), spec(), **kwargs)
        parallel = check_stabilization(
            concrete(), spec(), workers=workers, **kwargs
        )
        assert sequential.format() == parallel.format()
        assert sequential.holds == parallel.holds
        assert sequential.legitimate_abstract == parallel.legitimate_abstract
        assert sequential.core == parallel.core

    def test_partial_verdicts_agree_on_the_cut(self):
        """Under a tiny budget both paths stop PARTIAL in the same
        phase (explored tallies may differ by up to one batch)."""
        concrete = dijkstra_three_state(4).compile()
        spec = btr_program(4).compile()
        alpha = btr3_abstraction(4)
        sequential = check_stabilization(
            concrete, spec, alpha, state_budget=10
        )
        parallel = check_stabilization(
            concrete, spec, alpha, state_budget=10, workers=2
        )
        assert sequential.is_partial and parallel.is_partial
        assert (
            sequential.result.partial.phase == parallel.result.partial.phase
        )

    def test_generous_budget_still_identical(self):
        """A budget that never trips must not perturb the verdict."""
        concrete = dijkstra_four_state(3).compile()
        spec = btr_program(3).compile()
        alpha = btr4_abstraction(3)
        sequential = check_stabilization(
            concrete, spec, alpha, state_budget=10_000_000
        )
        parallel = check_stabilization(
            concrete, spec, alpha, state_budget=10_000_000, workers=3
        )
        assert sequential.format() == parallel.format()


class TestRefinementDifferential:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_holding_refinement_identical(self, workers):
        concrete = dijkstra_four_state(3).compile()
        spec = btr_program(3).compile()
        alpha = btr4_abstraction(3)
        sequential = check_convergence_refinement(concrete, spec, alpha)
        parallel = check_convergence_refinement(
            concrete, spec, alpha, workers=workers
        )
        assert sequential.format() == parallel.format()

    def test_failing_refinement_witness_identical(self):
        """The first violating transition in sequential order is the
        witness at every worker count."""
        concrete = dijkstra_three_state(4).compile()
        spec = btr_program(4).compile()
        alpha = btr3_abstraction(4)
        sequential = check_convergence_refinement(concrete, spec, alpha)
        parallel = check_convergence_refinement(
            concrete, spec, alpha, workers=2
        )
        assert not sequential.holds
        assert sequential.format() == parallel.format()
        assert sequential.witness.states == parallel.witness.states

    def test_stutter_insensitive_identical(self):
        concrete = c3_composed(3).compile()
        spec = btr_program(3).compile()
        alpha = btr3_abstraction(3)
        sequential = check_convergence_refinement(
            concrete, spec, alpha, stutter_insensitive=True
        )
        parallel = check_convergence_refinement(
            concrete, spec, alpha, stutter_insensitive=True, workers=2
        )
        assert sequential.format() == parallel.format()


class TestCliDifferential:
    def test_check_output_identical_with_workers(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        code_seq = main(["check", str(spec)])
        out_seq = capsys.readouterr().out
        code_par = main(["check", str(spec), "--workers", "2"])
        out_par = capsys.readouterr().out
        assert code_seq == code_par
        assert out_seq == out_par

    def test_check_cache_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        cache_dir = tmp_path / "cache"
        code_first = main(["check", str(spec), "--cache-dir", str(cache_dir)])
        first = capsys.readouterr()
        assert "verification cache: stored" in first.err
        code_second = main(["check", str(spec), "--cache-dir", str(cache_dir)])
        second = capsys.readouterr()
        assert "verification cache: hit" in second.err
        assert first.out == second.out
        assert code_first == code_second

    def test_cache_survives_reformatting(self, tmp_path, capsys):
        from repro.cli import main

        original = tmp_path / "a.gcl"
        original.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        reformatted = tmp_path / "b.gcl"
        reformatted.write_text(
            "# reformatted copy\n"
            "program toy\n\n"
            "var x :   mod 3\n"
            "action heal ::  x != 0  -->  x := 0\n"
            "init x == 0\n"
        )
        cache_dir = tmp_path / "cache"
        main(["check", str(original), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        main(["check", str(reformatted), "--cache-dir", str(cache_dir)])
        assert "verification cache: hit" in capsys.readouterr().err
