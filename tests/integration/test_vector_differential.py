"""Differential tests: the vector engine against packed and tuple.

The vector engine inherits the packed engine's core invariant and
extends it to a three-way agreement: for every ring system, spec,
abstraction, fairness mode, worker count, and budget,
``engine="vector"`` must render the *byte-identical* formatted verdict
— same holds/fails, same witness states, same counts — as both
reference engines, and the shared size-based counters must agree.  On
a pure-Python install the same entry points must keep passing by
falling back to the packed engine (asserted explicitly below via a
monkeypatched availability flag), so this module runs everywhere.
"""

from __future__ import annotations

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_stabilization,
)
from repro.kernel.vector import NUMPY_MISSING_REASON, numpy_available
from repro.obs import Recorder
from repro.parallel import parallel_available
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)
from tests.integration.test_packed_differential import (
    RING_CASES,
    SHARED_COUNTERS,
)

_WORKER_COUNTS = [1, 4] if parallel_available() else [1]

#: On a NumPy install the vector engine must actually be selected for
#: these program-sourced cases; without NumPy every case falls back.
_EXPECTED_SELECTION_COUNTER = (
    "engine.vector" if numpy_available() else "engine.fallback.packed"
)


class TestStabilizationDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    @pytest.mark.parametrize("workers", _WORKER_COUNTS)
    def test_verdicts_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter, workers
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness,
            workers=workers,
        )
        tuple_verdict = check_stabilization(
            concrete(), spec(), engine="tuple", **kwargs
        )
        vector_rec = Recorder()
        vector_verdict = check_stabilization(
            concrete(), spec(), engine="vector",
            instrumentation=vector_rec, **kwargs
        )
        assert tuple_verdict.format() == vector_verdict.format()
        assert tuple_verdict.holds == vector_verdict.holds
        assert (
            tuple_verdict.legitimate_abstract
            == vector_verdict.legitimate_abstract
        )
        assert tuple_verdict.core == vector_verdict.core
        assert (
            vector_rec.record().counters[_EXPECTED_SELECTION_COUNTER] == 1
        )

    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_shared_counters_agree_with_packed(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness
        )
        packed_rec, vector_rec = Recorder(), Recorder()
        check_stabilization(
            concrete(), spec(), engine="packed",
            instrumentation=packed_rec, **kwargs
        )
        check_stabilization(
            concrete(), spec(), engine="vector",
            instrumentation=vector_rec, **kwargs
        )
        packed_counters = packed_rec.record().counters
        vector_counters = vector_rec.record().counters
        for counter in SHARED_COUNTERS:
            assert packed_counters.get(counter) == vector_counters.get(
                counter
            ), counter

    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_program_and_system_sources_agree(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        """Program lowering and CSR system wrapping must not differ."""
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness,
            engine="vector",
        )
        from_programs = check_stabilization(concrete(), spec(), **kwargs)
        from_systems = check_stabilization(
            concrete().compile(), spec().compile(), **kwargs
        )
        assert from_programs.format() == from_systems.format()

    def test_partial_budget_cut_byte_identical(self):
        """Below the packed floor every engine falls back to the tuple
        engine's PARTIAL cut; the vector request must not change it."""
        recorder = Recorder()
        tuple_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="tuple",
        )
        vector_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="vector", instrumentation=recorder,
        )
        assert tuple_verdict.is_partial and vector_verdict.is_partial
        assert tuple_verdict.format() == vector_verdict.format()
        assert recorder.record().counters["engine.fallback.tuple"] == 1

    def test_no_numpy_fallback_is_packed_byte_for_byte(self, monkeypatch):
        from repro.kernel.vector import availability

        packed_verdict = check_stabilization(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="packed",
        )
        monkeypatch.setattr(availability, "HAVE_NUMPY", False)
        recorder = Recorder()
        fallback_verdict = check_stabilization(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="vector", instrumentation=recorder,
        )
        assert fallback_verdict.format() == packed_verdict.format()
        counters = recorder.record().counters
        assert counters["engine.fallback.packed"] == 1
        assert counters["engine.packed"] == 1
        events = [
            event
            for event in recorder.record().events
            if event.name == "engine.fallback"
        ]
        assert events and events[0].fields == {
            "requested": "vector", "reason": NUMPY_MISSING_REASON,
        }


class TestRefinementDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_convergence_refinement_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        kwargs = dict(alpha=alpha(), stutter_insensitive=stutter)
        tuple_verdict = check_convergence_refinement(
            concrete(), spec(), engine="tuple", **kwargs
        )
        vector_verdict = check_convergence_refinement(
            concrete(), spec(), engine="vector", **kwargs
        )
        assert tuple_verdict.format() == vector_verdict.format()
        if not tuple_verdict.holds:
            assert (
                tuple_verdict.witness.states == vector_verdict.witness.states
            )

    def test_holding_refinement_counters_agree(self):
        tuple_rec, vector_rec = Recorder(), Recorder()
        tuple_verdict = check_convergence_refinement(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="tuple", instrumentation=tuple_rec,
        )
        vector_verdict = check_convergence_refinement(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="vector", instrumentation=vector_rec,
        )
        assert tuple_verdict.holds and vector_verdict.holds
        assert tuple_verdict.format() == vector_verdict.format()
        tuple_counters = tuple_rec.record().counters
        vector_counters = vector_rec.record().counters
        for counter in (
            "refine.reachable.size",
            "refine.init.transitions.checked",
            "refine.transitions.exact",
            "refine.transitions.compressing",
            "refine.transitions.stuttering",
        ):
            assert tuple_counters[counter] == vector_counters[counter], counter

    def test_everywhere_eventually_byte_identical(self):
        tuple_verdict = check_everywhere_eventually_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="tuple",
        )
        vector_verdict = check_everywhere_eventually_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="vector",
        )
        assert tuple_verdict.format() == vector_verdict.format()

    def test_state_budget_requests_replay_on_tuple(self):
        """Any refinement budget pins the shared-meter semantics to the
        tuple engine, vector request or not."""
        recorder = Recorder()
        verdict = check_convergence_refinement(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            state_budget=100_000, engine="vector", instrumentation=recorder,
        )
        assert verdict.holds
        assert recorder.record().counters["engine.fallback.tuple"] == 1

    @pytest.mark.skipif(
        not parallel_available(), reason="no fork start method"
    )
    def test_workers_and_engines_commute(self):
        baseline = check_convergence_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="tuple",
        )
        for workers in (1, 4):
            for engine in ("tuple", "packed", "vector"):
                verdict = check_convergence_refinement(
                    dijkstra_four_state(3), btr_program(3),
                    btr4_abstraction(3), workers=workers, engine=engine,
                )
                assert verdict.format() == baseline.format(), (workers, engine)


class TestCliDifferential:
    def _write_spec(self, tmp_path):
        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        return spec

    @pytest.mark.parametrize("workers", _WORKER_COUNTS)
    def test_check_output_identical_across_engines(
        self, tmp_path, capsys, workers
    ):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        outputs = {}
        codes = {}
        for engine in ("tuple", "packed", "vector"):
            codes[engine] = main(
                ["check", str(spec), "--engine", engine,
                 "--workers", str(workers)]
            )
            outputs[engine] = capsys.readouterr().out
        assert codes["vector"] == codes["tuple"] == codes["packed"]
        assert outputs["vector"] == outputs["tuple"] == outputs["packed"]

    def test_vector_engine_flag_recorded(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        record = tmp_path / "run.jsonl"
        main(["check", str(spec), "--engine", "vector",
              "--obs-out", str(record)])
        capsys.readouterr()
        text = record.read_text(encoding="utf-8")
        if numpy_available():
            assert '"engine.vector"' in text
        else:
            assert '"engine.fallback.packed"' in text

    def test_engines_share_cache_entries(self, tmp_path, capsys):
        """The engine stays out of the cache key: a verdict stored by
        the vector engine is served back to the tuple engine."""
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cache"
        main(["check", str(spec), "--engine", "vector",
              "--cache-dir", str(cache_dir)])
        assert "verification cache: stored" in capsys.readouterr().err
        main(["check", str(spec), "--engine", "tuple",
              "--cache-dir", str(cache_dir)])
        assert "verification cache: hit" in capsys.readouterr().err
