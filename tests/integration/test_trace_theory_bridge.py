"""Bridge tests: simulated traces satisfy the paper's definitions.

The simulator and the theory layer were built independently; here a
*simulated* run of a concrete protocol is converted to a state
sequence, pushed through the abstraction function, and checked against
the literal Section 2 definitions — computation-hood, the legitimate
suffix property, and convergence isomorphism with a constructed
abstract witness.  Any divergence between the two substrates would
surface here.
"""

import random

import pytest

from repro.checker import expand_to_abstract_path
from repro.core.isomorphism import check_convergence_isomorphism
from repro.core.stabilization import sequence_has_legitimate_suffix
from repro.rings import (
    btr3_abstraction,
    btr_program,
    c1_program,
    btr4_abstraction,
    dijkstra_three_state,
)
from repro.simulation import CorruptVariables, FaultSchedule, simulate


def trace_states(program, trace):
    """Pack a trace's environments into state tuples."""
    return tuple(program.state_of(env) for env in trace.environments())


class TestLegitimateRuns:
    def test_simulated_legit_run_maps_to_a_btr_computation(self):
        """From a legitimate start, every simulated Dijkstra-3 step's
        image is an exact BTR transition."""
        n = 5
        program = dijkstra_three_state(n)
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        trace = simulate(program, 80, rng=random.Random(4))
        states = trace_states(program, trace)
        image = alpha.map_sequence(states)
        assert btr.is_computation(image, require_maximal=False)

    def test_c1_legit_run_maps_exactly_too(self):
        n = 4
        program = c1_program(n)
        btr = btr_program(n).compile()
        alpha = btr4_abstraction(n)
        trace = simulate(program, 60, rng=random.Random(9))
        states = trace_states(program, trace)
        image = alpha.map_sequence(states)
        assert btr.is_computation(image, require_maximal=False)

    def test_image_run_is_a_convergence_isomorphism_of_itself_expanded(self):
        """Expanding a legitimate image run through the witness
        constructor must give back the run itself (no compressions in
        legitimate states)."""
        n = 4
        program = dijkstra_three_state(n)
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        trace = simulate(program, 50, rng=random.Random(2))
        image = alpha.map_sequence(trace_states(program, trace))
        witness = expand_to_abstract_path(image, btr)
        assert witness == image
        assert check_convergence_isomorphism(image, witness).holds


class TestFaultyRuns:
    @pytest.mark.parametrize("seed", range(8))
    def test_post_fault_run_acquires_a_legitimate_suffix(self, seed):
        """After a corruption burst, the simulated run's image must
        satisfy the paper's stabilization clause: some suffix is a
        suffix of a BTR computation from an initial state."""
        n = 5
        program = dijkstra_three_state(n)
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        trace = simulate(
            program,
            600,
            rng=random.Random(seed),
            faults=FaultSchedule([5], CorruptVariables(3)),
        )
        # Slice the run after the fault: the segment whose suffix we test.
        environments = trace.environments()
        fault_index = next(
            i for i, e in enumerate(trace.events) if e.kind == "fault"
        )
        post_fault = environments[fault_index + 1 :]
        states = tuple(program.state_of(env) for env in post_fault)
        image = alpha.map_sequence(states)
        assert sequence_has_legitimate_suffix(image, btr, complete=False)

    def test_every_recovery_step_has_a_known_shape(self):
        """Classify every image step of a faulty run.  The merged
        Dijkstra-3 is *not* a convergence refinement of BTR (nor of
        the wrapped abstract composite — the run-level face of the
        Lemma 10 finding): besides exact BTR moves and compressions it
        takes token-creation steps (the merged top action, +1 token)
        and pairwise-cancellation steps (the merged W2' role, -2
        tokens).  Nothing else may occur."""
        from repro.checker.graph import shortest_path
        from repro.rings.tokens import count_tokens

        n = 4
        program = dijkstra_three_state(n)
        btr = btr_program(n).compile()
        alpha = btr3_abstraction(n)
        schema = btr.schema
        trace = simulate(
            program,
            200,
            rng=random.Random(13),
            faults=FaultSchedule([3], CorruptVariables(3)),
        )
        environments = trace.environments()
        fault_index = next(
            i for i, e in enumerate(trace.events) if e.kind == "fault"
        )
        states = tuple(
            program.state_of(env) for env in environments[fault_index + 1 :]
        )
        image = alpha.map_sequence(states)
        shapes = set()
        for current, following in zip(image, image[1:]):
            if current == following:
                shapes.add("stutter")
                continue
            if btr.has_transition(current, following):
                shapes.add("exact")
                continue
            if shortest_path(btr, current, following, min_length=2) is not None:
                shapes.add("compression")
                continue
            delta = count_tokens(schema, following) - count_tokens(schema, current)
            assert delta in (1, -2, -1), (current, following, delta)
            shapes.add("creation" if delta == 1 else "cancellation")
        # The seeded run exercises the interesting shapes.
        assert "exact" in shapes
