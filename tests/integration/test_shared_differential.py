"""Differential tests: the shared-memory engine against the references.

The shared engine streams its fixpoints through bounded chunks, shm
segments, and spill files — none of which may show in the verdict: for
every ring system, fairness mode, worker count, and budget,
``engine="shared"`` must render the *byte-identical* formatted verdict
as the tuple reference, emit the same size-based counters, and leave
behind **zero** shm segments or spill files.  The module also pins the
engine-selection contract: a ``--mem-budget`` context transparently
upgrades ``engine="vector"`` requests, tiny schemas fall back with a
reasoned event, and a pure-Python install degrades down the documented
chain.
"""

from __future__ import annotations

import os

import pytest

from repro.checker import check_stabilization
from repro.kernel.shared import (
    SHARED_MIN_STATES,
    shared_fallback_reason,
    using_memory_budget,
)
from repro.kernel.shared.segments import shm_dir
from repro.kernel.vector import numpy_available
from repro.obs import Recorder
from repro.parallel import parallel_available
from repro.rings import (
    btr3_abstraction,
    btr_program,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)
from tests.integration.test_packed_differential import (
    RING_CASES,
    SHARED_COUNTERS,
)

_WORKER_COUNTS = [1, 4] if parallel_available() else [1]

#: With NumPy the shared engine must actually run these cases (every
#: ring case is at or above ``SHARED_MIN_STATES``); without it the
#: request must fall back down the chain, starting at vector.
_EXPECTED_SELECTION_COUNTER = (
    "engine.shared" if numpy_available() else "engine.fallback.vector"
)


def _shm_leaks() -> list:
    """Orphaned engine shm segments (must always be []).

    A segment counts as a leak when its embedded driver pid is this
    process or any dead process (covers CLI subprocess runs, whose
    driver has exited by assertion time).  Segments whose driver is
    still alive belong to a concurrent run (xdist, a benchmark) and
    are not this test's leak to report.
    """
    directory = shm_dir()
    if directory is None:
        return []
    leaks = []
    for name in os.listdir(directory):
        if not name.startswith("rs-"):
            continue
        try:
            owner = int(name.split("-")[1], 16)
        except (IndexError, ValueError):
            leaks.append(name)
            continue
        if owner == os.getpid():
            leaks.append(name)
            continue
        try:
            os.kill(owner, 0)
        except ProcessLookupError:
            leaks.append(name)
        except PermissionError:
            pass
    return sorted(leaks)


def _spill_leaks(parent) -> list:
    """Entries left in a run's spill parent directory (must be [])."""
    return sorted(entry.name for entry in parent.iterdir())


class TestStabilizationDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    @pytest.mark.parametrize("workers", _WORKER_COUNTS)
    def test_verdicts_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter, workers,
        tmp_path,
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness,
            workers=workers,
        )
        tuple_verdict = check_stabilization(
            concrete(), spec(), engine="tuple", **kwargs
        )
        shared_rec = Recorder()
        # A deliberately tiny budget with a scoped spill directory: the
        # streamed paths must engage without changing a byte, and the
        # run must clean up after itself.
        with using_memory_budget("1M", spill_dir=str(tmp_path),
                                 parallel_min=16):
            shared_verdict = check_stabilization(
                concrete(), spec(), engine="shared",
                instrumentation=shared_rec, **kwargs
            )
        assert tuple_verdict.format() == shared_verdict.format()
        assert tuple_verdict.holds == shared_verdict.holds
        assert (
            tuple_verdict.legitimate_abstract
            == shared_verdict.legitimate_abstract
        )
        assert tuple_verdict.core == shared_verdict.core
        assert (
            shared_rec.record().counters[_EXPECTED_SELECTION_COUNTER] == 1
        )
        assert _shm_leaks() == []
        assert _spill_leaks(tmp_path) == []

    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_shared_counters_agree_with_packed(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness
        )
        packed_rec, shared_rec = Recorder(), Recorder()
        check_stabilization(
            concrete(), spec(), engine="packed",
            instrumentation=packed_rec, **kwargs
        )
        check_stabilization(
            concrete(), spec(), engine="shared",
            instrumentation=shared_rec, **kwargs
        )
        packed_counters = packed_rec.record().counters
        shared_counters = shared_rec.record().counters
        for counter in SHARED_COUNTERS:
            assert packed_counters.get(counter) == shared_counters.get(
                counter
            ), counter

    @pytest.mark.parametrize("workers", _WORKER_COUNTS)
    def test_all_three_axes_active_stay_byte_identical(
        self, workers, tmp_path
    ):
        """The tentpole differential: int32 packing, table reuse, and
        the mmap visited backing all engaged at once — 59049 states
        (past the int16 edge) under a 64K budget (well below the flag
        fields) — and all four engines still render the same bytes."""
        concrete = lambda: kstate_program(5, 9)  # noqa: E731
        spec = lambda: utr_program(5)  # noqa: E731
        kwargs = dict(alpha=utr_abstraction(5, 9), workers=workers)
        verdicts = {}
        for engine in ("tuple", "packed", "vector"):
            verdicts[engine] = check_stabilization(
                concrete(), spec(), engine=engine, **kwargs
            )
        recorder = Recorder()
        with using_memory_budget("64K", spill_dir=str(tmp_path),
                                 parallel_min=64):
            verdicts["shared"] = check_stabilization(
                concrete(), spec(), engine="shared",
                instrumentation=recorder, **kwargs
            )
        reference = verdicts["tuple"].format()
        for engine, verdict in verdicts.items():
            assert verdict.format() == reference, engine
        record = recorder.record()
        if numpy_available():
            widths = [
                event.fields
                for event in record.events
                if event.name == "shm.code_width"
            ]
            assert widths and widths[0]["width"] == 4
            assert widths[0]["packed"] is True
            backings = {
                event.fields["tag"]: event.fields["backing"]
                for event in record.events
                if event.name == "shm.visited"
            }
            assert "mmap" in backings.values()
            assert record.counters["shm.visited.mmap_bytes"] > 0
            assert record.counters.get("kernel.tables.hits", 0) > 0
        assert _shm_leaks() == []
        assert _spill_leaks(tmp_path) == []

    def test_partial_budget_cut_byte_identical(self):
        """Below the engine floor every request replays the tuple
        engine's PARTIAL cut; a shared request must not change it."""
        recorder = Recorder()
        tuple_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="tuple",
        )
        shared_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="shared", instrumentation=recorder,
        )
        assert tuple_verdict.is_partial and shared_verdict.is_partial
        assert tuple_verdict.format() == shared_verdict.format()
        assert recorder.record().counters["engine.fallback.tuple"] == 1


@pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")
class TestEngineSelection:
    def test_memory_context_upgrades_vector_requests(self):
        """``--mem-budget`` makes plain vector requests stream: same
        verdict, shared engine selected."""
        baseline = check_stabilization(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="vector",
        )
        recorder = Recorder()
        with using_memory_budget("32M"):
            upgraded = check_stabilization(
                kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
                engine="vector", instrumentation=recorder,
            )
        assert upgraded.format() == baseline.format()
        assert upgraded.engine == "shared"
        assert recorder.record().counters["engine.shared"] == 1

    def test_no_context_vector_requests_stay_vector(self):
        recorder = Recorder()
        result = check_stabilization(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="vector", instrumentation=recorder,
        )
        assert result.engine == "vector"
        assert "engine.shared" not in recorder.record().counters

    def test_tiny_schema_falls_back_with_a_reasoned_event(self):
        """Below ``SHARED_MIN_STATES`` segment setup costs more than
        the whole check: the request must fall back, loudly."""
        from repro.gcl.parser import parse_program

        toy = parse_program(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        assert toy.schema().size() < SHARED_MIN_STATES
        reason = shared_fallback_reason(toy, toy)
        assert reason is not None and "costs more than it saves" in reason
        recorder = Recorder()
        result = check_stabilization(
            toy, toy, engine="shared", instrumentation=recorder,
        )
        assert result.engine != "shared"
        record = recorder.record()
        assert record.counters["engine.fallback.vector"] == 1
        events = [
            event for event in record.events
            if event.name == "engine.fallback"
        ]
        assert events and events[0].fields["requested"] == "shared"


TOY_SPEC = (
    "program grid\n"
    "var x : mod 8\n"
    "var y : mod 8\n"
    "action fix_x :: x != 0 --> x := 0\n"
    "action fix_y :: y != 0 --> y := 0\n"
    "init x == 0 && y == 0\n"
)


class TestCliDifferential:
    def _write_spec(self, tmp_path):
        spec = tmp_path / "grid.gcl"
        spec.write_text(TOY_SPEC, encoding="utf-8")
        return spec

    def test_check_output_identical_across_engines(self, tmp_path, capsys):
        """64 states: large enough to route shared for real, and the
        CLI flags must not change a byte of the verdict."""
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        spill = tmp_path / "spill"
        spill.mkdir()
        outputs = {}
        codes = {}
        for engine in ("tuple", "packed", "vector", "shared"):
            argv = ["check", str(spec), "--engine", engine]
            if engine == "shared":
                argv += ["--mem-budget", "8M", "--spill-dir", str(spill)]
            codes[engine] = main(argv)
            outputs[engine] = capsys.readouterr().out
        assert (
            codes["shared"] == codes["vector"]
            == codes["tuple"] == codes["packed"]
        )
        assert (
            outputs["shared"] == outputs["vector"]
            == outputs["tuple"] == outputs["packed"]
        )
        assert _shm_leaks() == []
        assert _spill_leaks(spill) == []

    def test_shared_engine_flag_recorded(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        record = tmp_path / "run.jsonl"
        main(["check", str(spec), "--engine", "shared",
              "--obs-out", str(record)])
        capsys.readouterr()
        text = record.read_text(encoding="utf-8")
        if numpy_available():
            assert '"engine.shared"' in text
        else:
            assert '"engine.fallback.vector"' in text

    def test_bad_mem_budget_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["check", str(spec), "--mem-budget", "lots"])
        assert excinfo.value.code == 2
        assert "memory budget" in capsys.readouterr().err
