"""Parity between the checked-in GCL spec files and the builders.

`examples/specs/*.gcl` are the paper's systems in concrete syntax —
the files a CLI user would start from.  Each must parse to an
automaton equal to the programmatic builder's, so the two surfaces can
never drift apart.
"""

import pathlib

import pytest

from repro.cli import main
from repro.gcl.parser import parse_program
from repro.rings import (
    btr_program,
    c2_program,
    c3_program,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
)

SPECS_DIR = pathlib.Path(__file__).parents[2] / "examples" / "specs"

PARITY = {
    "dijkstra3_n4.gcl": lambda: dijkstra_three_state(4),
    "dijkstra4_n4.gcl": lambda: dijkstra_four_state(4),
    "c2_n4.gcl": lambda: c2_program(4),
    "c3_n4.gcl": lambda: c3_program(4),
    "kstate_n5_k4.gcl": lambda: kstate_program(5, 4),
    "btr_n4.gcl": lambda: btr_program(4),
}


@pytest.mark.parametrize("filename", sorted(PARITY))
def test_spec_file_matches_builder(filename):
    source = (SPECS_DIR / filename).read_text()
    parsed = parse_program(source)
    built = PARITY[filename]()
    assert parsed.compile() == built.compile(), filename


def test_every_spec_file_is_covered():
    shipped = {path.name for path in SPECS_DIR.glob("*.gcl")}
    assert shipped == set(PARITY)


@pytest.mark.parametrize("filename", sorted(PARITY))
def test_spec_files_carry_process_structure_where_expected(filename):
    parsed = parse_program((SPECS_DIR / filename).read_text())
    built = PARITY[filename]()
    assert bool(parsed.processes) == bool(built.processes)


def test_cli_simulates_a_spec_file(capsys):
    path = str(SPECS_DIR / "dijkstra3_n4.gcl")
    assert main(["simulate", path, "--steps", "30"]) == 0
    assert "total: 30 steps" in capsys.readouterr().out


def test_cli_renders_a_spec_file(capsys):
    path = str(SPECS_DIR / "btr_n4.gcl")
    assert main(["render", path]) == 0
    out = capsys.readouterr().out
    assert parse_program(out).compile() == btr_program(4).compile()
