"""Differential tests: the packed kernel engine against the tuple engine.

The core invariant of :mod:`repro.kernel` is verdict identity: for
every ring system, spec, abstraction, fairness mode, worker count, and
budget, ``engine="packed"`` must produce a *byte-identical* formatted
verdict — same holds/fails, same witness states, same counts — as the
reference tuple engine, and the shared size-based observability
counters must agree.  These tests enforce it on every ring system of
the reproduction (including the failing controls and ``PARTIAL``
budget cuts), on both decision procedures, and through the CLI.
"""

from __future__ import annotations

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_stabilization,
)
from repro.obs import Recorder
from repro.parallel import parallel_available
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c3_composed,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)

# Every ring verification of the reproduction:
# (name, concrete, spec, alpha, fairness, stutter_insensitive)
RING_CASES = [
    (
        "dijkstra4-n3",
        lambda: dijkstra_four_state(3),
        lambda: btr_program(3),
        lambda: btr4_abstraction(3),
        "none", False,
    ),
    (
        "dijkstra3-n4",
        lambda: dijkstra_three_state(4),
        lambda: btr_program(4),
        lambda: btr3_abstraction(4),
        "none", False,
    ),
    (
        "c3-composed-n3",
        lambda: c3_composed(3),
        lambda: btr_program(3),
        lambda: btr3_abstraction(3),
        "strong", True,
    ),
    (
        "kstate-n4",
        lambda: kstate_program(4, 4),
        lambda: utr_program(4),
        lambda: utr_abstraction(4, 4),
        "none", False,
    ),
    (
        "btr-n4-control",  # the deliberate non-stabilizing control
        lambda: btr_program(4),
        lambda: btr_program(4),
        lambda: None,
        "none", False,
    ),
    (
        "kstate-n4-k3-refuted",  # K = n - 1 < n: a failing case
        lambda: kstate_program(4, 3),
        lambda: utr_program(4),
        lambda: utr_abstraction(4, 3),
        "none", False,
    ),
]

# Size-based counters both engines must emit identically.  (Not in the
# list: check.fixpoint.iterations — the documented sweep-order caveat —
# and parallel.* batch shapes.)
SHARED_COUNTERS = (
    "check.states.enumerated",
    "check.candidates.initial",
    "check.legitimate.size",
    "check.core.size",
    "check.outside.size",
    "check.states.evicted",
)

_WORKER_COUNTS = [1, 4] if parallel_available() else [1]


class TestStabilizationDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    @pytest.mark.parametrize("workers", _WORKER_COUNTS)
    def test_verdicts_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter, workers
    ):
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness,
            workers=workers,
        )
        tuple_rec, packed_rec = Recorder(), Recorder()
        tuple_verdict = check_stabilization(
            concrete(), spec(), engine="tuple",
            instrumentation=tuple_rec, **kwargs
        )
        packed_verdict = check_stabilization(
            concrete(), spec(), engine="packed",
            instrumentation=packed_rec, **kwargs
        )
        assert tuple_verdict.format() == packed_verdict.format()
        assert tuple_verdict.holds == packed_verdict.holds
        assert (
            tuple_verdict.legitimate_abstract
            == packed_verdict.legitimate_abstract
        )
        assert tuple_verdict.core == packed_verdict.core
        assert packed_rec.record().counters["engine.packed"] == 1
        tuple_counters = tuple_rec.record().counters
        packed_counters = packed_rec.record().counters
        for counter in SHARED_COUNTERS:
            assert tuple_counters.get(counter) == packed_counters.get(
                counter
            ), counter

    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_program_and_system_sources_agree(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        """The packed engine lowers programs directly; handing it the
        compiled system instead must not change a byte."""
        kwargs = dict(
            alpha=alpha(), stutter_insensitive=stutter, fairness=fairness,
            engine="packed",
        )
        from_programs = check_stabilization(concrete(), spec(), **kwargs)
        from_systems = check_stabilization(
            concrete().compile(), spec().compile(), **kwargs
        )
        assert from_programs.format() == from_systems.format()

    def test_partial_budget_cut_byte_identical(self):
        """Below the packed-engine floor the check must fall back and
        reproduce the tuple engine's PARTIAL cut exactly."""
        recorder = Recorder()
        tuple_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="tuple",
        )
        packed_verdict = check_stabilization(
            dijkstra_three_state(4), btr_program(4), btr3_abstraction(4),
            state_budget=10, engine="packed", instrumentation=recorder,
        )
        assert tuple_verdict.is_partial and packed_verdict.is_partial
        assert tuple_verdict.format() == packed_verdict.format()
        assert recorder.record().counters["engine.fallback.tuple"] == 1

    def test_generous_budget_still_identical(self):
        tuple_verdict = check_stabilization(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            state_budget=10_000_000, engine="tuple",
        )
        packed_verdict = check_stabilization(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            state_budget=10_000_000, engine="packed",
        )
        assert tuple_verdict.format() == packed_verdict.format()


class TestRefinementDifferential:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    def test_convergence_refinement_byte_identical(
        self, name, concrete, spec, alpha, fairness, stutter
    ):
        kwargs = dict(alpha=alpha(), stutter_insensitive=stutter)
        tuple_verdict = check_convergence_refinement(
            concrete(), spec(), engine="tuple", **kwargs
        )
        packed_verdict = check_convergence_refinement(
            concrete(), spec(), engine="packed", **kwargs
        )
        assert tuple_verdict.format() == packed_verdict.format()
        if not tuple_verdict.holds:
            assert (
                tuple_verdict.witness.states == packed_verdict.witness.states
            )

    def test_holding_refinement_counters_agree(self):
        tuple_rec, packed_rec = Recorder(), Recorder()
        tuple_verdict = check_convergence_refinement(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="tuple", instrumentation=tuple_rec,
        )
        packed_verdict = check_convergence_refinement(
            kstate_program(4, 4), utr_program(4), utr_abstraction(4, 4),
            engine="packed", instrumentation=packed_rec,
        )
        assert tuple_verdict.holds and packed_verdict.holds
        assert tuple_verdict.format() == packed_verdict.format()
        tuple_counters = tuple_rec.record().counters
        packed_counters = packed_rec.record().counters
        for counter in (
            "refine.reachable.size",
            "refine.init.transitions.checked",
            "refine.transitions.exact",
            "refine.transitions.compressing",
            "refine.transitions.stuttering",
        ):
            assert tuple_counters[counter] == packed_counters[counter], counter

    def test_everywhere_eventually_byte_identical(self):
        tuple_verdict = check_everywhere_eventually_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="tuple",
        )
        packed_verdict = check_everywhere_eventually_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="packed",
        )
        assert tuple_verdict.format() == packed_verdict.format()

    @pytest.mark.skipif(
        not parallel_available(), reason="no fork start method"
    )
    def test_workers_and_engines_commute(self):
        baseline = check_convergence_refinement(
            dijkstra_four_state(3), btr_program(3), btr4_abstraction(3),
            engine="tuple",
        )
        for workers in (1, 4):
            for engine in ("tuple", "packed"):
                verdict = check_convergence_refinement(
                    dijkstra_four_state(3), btr_program(3),
                    btr4_abstraction(3), workers=workers, engine=engine,
                )
                assert verdict.format() == baseline.format(), (workers, engine)


class TestCliDifferential:
    def test_check_output_identical_across_engines(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        code_packed = main(["check", str(spec), "--engine", "packed"])
        out_packed = capsys.readouterr().out
        code_tuple = main(["check", str(spec), "--engine", "tuple"])
        out_tuple = capsys.readouterr().out
        assert code_packed == code_tuple
        assert out_packed == out_tuple

    def test_engine_defaults_to_packed(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        record = tmp_path / "run.jsonl"
        main(["check", str(spec), "--obs-out", str(record)])
        capsys.readouterr()
        assert '"engine.packed"' in record.read_text(encoding="utf-8")

    def test_bad_engine_flag_rejected_at_parse_time(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as caught:
            main(["check", "whatever.gcl", "--engine", "bogus"])
        assert caught.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_engines_share_cache_entries(self, tmp_path, capsys):
        """The engine is excluded from the cache key: a verdict stored
        by one engine is served to the other."""
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(
            "program toy\n"
            "var x : mod 3\n"
            "action heal :: x != 0 --> x := 0\n"
            "init x == 0\n"
        )
        cache_dir = tmp_path / "cache"
        main(["check", str(spec), "--engine", "tuple",
              "--cache-dir", str(cache_dir)])
        assert "verification cache: stored" in capsys.readouterr().err
        main(["check", str(spec), "--engine", "packed",
              "--cache-dir", str(cache_dir)])
        assert "verification cache: hit" in capsys.readouterr().err
