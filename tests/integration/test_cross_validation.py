"""Cross-validation: graph procedures vs definitional oracles.

The efficient checkers (transition-local, fixpoint-based) and the
literal bounded-computation oracles implement the same definitions two
different ways.  Here they are run against each other over a corpus of
seeded random systems — any divergence is a bug in one of the two.
"""

import random

import pytest

from repro.checker import (
    check_convergence_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.core.refinement import (
    convergence_refines_on_computations,
    everywhere_refines_on_computations,
    refines_init_on_computations,
)
from repro.core.stabilization import stabilizes_on_computations
from repro.core.state import StateSchema
from repro.core.system import System

SCHEMA = StateSchema({"v": tuple(range(5))})
ORACLE_BOUND = 7  # > |Sigma| + 1: long enough to witness every violation


def random_system(rng: random.Random, density: float, name: str) -> System:
    transitions = []
    for a in range(5):
        for b in range(5):
            if rng.random() < density:
                transitions.append((((a,)), ((b,))))
    initial = [(rng.randrange(5),)]
    return System(SCHEMA, transitions, initial=initial, name=name)


def random_subsystem(system: System, rng: random.Random, keep: float) -> System:
    transitions = [pair for pair in system.transitions() if rng.random() < keep]
    return System(SCHEMA, transitions, initial=system.initial, name="sub")


CASES = [(seed, density) for seed in range(30) for density in (0.15, 0.3, 0.5)]


class TestRefinementAgreement:
    @pytest.mark.parametrize("seed,density", CASES)
    def test_init_refinement_agrees(self, seed, density):
        rng = random.Random((seed, density, "init").__hash__())
        abstract = random_system(rng, density, "A")
        concrete = random_subsystem(abstract, rng, keep=0.7)
        fast = check_init_refinement(concrete, abstract).holds
        slow = refines_init_on_computations(concrete, abstract, max_length=ORACLE_BOUND)
        assert fast == slow

    @pytest.mark.parametrize("seed,density", CASES)
    def test_everywhere_refinement_agrees(self, seed, density):
        rng = random.Random((seed, density, "ew").__hash__())
        abstract = random_system(rng, density, "A")
        concrete = random_subsystem(abstract, rng, keep=0.7)
        fast = check_everywhere_refinement(concrete, abstract).holds
        slow = everywhere_refines_on_computations(
            concrete, abstract, max_length=ORACLE_BOUND
        )
        assert fast == slow

    @pytest.mark.parametrize("seed,density", CASES[:45])
    def test_convergence_refinement_oracle_is_implied(self, seed, density):
        """The exact procedure implies the bounded oracle (the oracle
        can under-refute at its bound but never rejects a true
        convergence refinement)."""
        rng = random.Random((seed, density, "cr").__hash__())
        abstract = random_system(rng, density, "A")
        concrete = random_subsystem(abstract, rng, keep=0.6)
        if check_convergence_refinement(concrete, abstract).holds:
            assert convergence_refines_on_computations(
                concrete, abstract, max_length=5
            )


class TestHierarchy:
    """Everywhere refinement => convergence refinement => init refinement
    (the paper's inclusion chain), over the random corpus."""

    @pytest.mark.parametrize("seed,density", CASES)
    def test_inclusions(self, seed, density):
        rng = random.Random((seed, density, "hier").__hash__())
        abstract = random_system(rng, density, "A")
        concrete = random_subsystem(abstract, rng, keep=0.8)
        everywhere = check_everywhere_refinement(concrete, abstract).holds
        convergence = check_convergence_refinement(concrete, abstract).holds
        init = check_init_refinement(concrete, abstract).holds
        if everywhere and init:
            assert convergence
        if convergence:
            assert init


class TestStabilizationAgreement:
    @pytest.mark.parametrize("seed,density", CASES)
    def test_fixpoint_implies_oracle(self, seed, density):
        """check_stabilization is sound: whenever it accepts, every
        bounded computation indeed acquires a legitimate suffix."""
        rng = random.Random((seed, density, "stab").__hash__())
        abstract = random_system(rng, density, "A")
        concrete = random_subsystem(abstract, rng, keep=0.85)
        if check_stabilization(concrete, abstract, compute_steps=False).holds:
            assert stabilizes_on_computations(
                concrete, abstract, max_length=ORACLE_BOUND
            )

    @pytest.mark.parametrize("seed", range(40))
    def test_oracle_refutations_are_confirmed(self, seed):
        """Conversely: when the bounded oracle refutes, the fixpoint
        procedure refutes too (the oracle's refutations are genuine)."""
        rng = random.Random((seed, "refute").__hash__())
        abstract = random_system(rng, 0.25, "A")
        concrete = random_subsystem(abstract, rng, keep=0.8)
        if not stabilizes_on_computations(concrete, abstract, max_length=ORACLE_BOUND):
            assert not check_stabilization(
                concrete, abstract, compute_steps=False
            ).holds


class TestTheorem1OnRandomCorpus:
    """Theorem 1 exercised beyond the token rings: whenever a random
    pair satisfies [C <= A] and A is stabilizing to B, C must be
    stabilizing to B.  Vacuously true cases are counted to ensure the
    corpus actually exercises the premises."""

    def test_no_counterexample_and_not_vacuous(self):
        hits = 0
        for seed in range(120):
            rng = random.Random((seed, "thm1").__hash__())
            target = random_system(rng, 0.3, "B")
            abstract = random_subsystem(target, rng, keep=0.9).with_name("A")
            concrete = random_subsystem(abstract, rng, keep=0.8).with_name("C")
            premise1 = check_convergence_refinement(concrete, abstract).holds
            premise2 = check_stabilization(
                abstract, target, compute_steps=False
            ).holds
            if premise1 and premise2:
                hits += 1
                assert check_stabilization(
                    concrete, target, compute_steps=False
                ).holds, f"Theorem 1 violated at seed {seed}"
        assert hits >= 3, "corpus never satisfied the premises; widen it"
