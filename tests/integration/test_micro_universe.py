"""Exhaustive micro-universe cross-validation.

Over a 2-state space there are only 16 transition relations and 4
initial-state sets — every system can be enumerated, and every *pair*
of systems checked against the literal bounded oracles with a bound
(5 states) that exceeds the longest possible simple path plus the
revisit needed to witness any violation.  Unlike the random corpora,
this is a *complete* verification of the decision procedures on the
whole universe of tiny instances.
"""

import itertools

import pytest

from repro.checker import (
    check_everywhere_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.core.refinement import (
    everywhere_refines_on_computations,
    refines_init_on_computations,
)
from repro.core.stabilization import stabilizes_on_computations
from repro.core.state import StateSchema
from repro.core.system import System

SCHEMA = StateSchema({"v": (0, 1)})
STATES = [(0,), (1,)]
ALL_PAIRS = [(a, b) for a in STATES for b in STATES]
ORACLE_BOUND = 5

ALL_RELATIONS = [
    frozenset(pairs)
    for size in range(5)
    for pairs in itertools.combinations(ALL_PAIRS, size)
]
NONEMPTY_INITIALS = [frozenset([STATES[0]]), frozenset([STATES[1]]),
                     frozenset(STATES)]


def all_systems():
    for relation in ALL_RELATIONS:
        for initial in NONEMPTY_INITIALS:
            yield System(SCHEMA, relation, initial, name="u")


SYSTEMS = list(all_systems())


class TestExhaustively:
    def test_universe_size(self):
        assert len(SYSTEMS) == 16 * 3 == 48

    def test_init_refinement_agrees_everywhere(self):
        disagreements = []
        for concrete in SYSTEMS:
            for abstract in SYSTEMS:
                fast = check_init_refinement(concrete, abstract).holds
                slow = refines_init_on_computations(
                    concrete, abstract, max_length=ORACLE_BOUND
                )
                if fast != slow:
                    disagreements.append((concrete, abstract, fast, slow))
        assert not disagreements, disagreements[:3]

    def test_everywhere_refinement_agrees_everywhere(self):
        disagreements = []
        for concrete in SYSTEMS:
            for abstract in SYSTEMS:
                fast = check_everywhere_refinement(concrete, abstract).holds
                slow = everywhere_refines_on_computations(
                    concrete, abstract, max_length=ORACLE_BOUND
                )
                if fast != slow:
                    disagreements.append((concrete, abstract, fast, slow))
        assert not disagreements, disagreements[:3]

    def test_stabilization_fixpoint_is_sound_everywhere(self):
        """Acceptance by the fixpoint procedure implies the literal
        per-computation property, across the whole universe."""
        violations = []
        for concrete in SYSTEMS:
            for abstract in SYSTEMS:
                verdict = check_stabilization(
                    concrete, abstract, compute_steps=False
                ).holds
                if verdict and not stabilizes_on_computations(
                    concrete, abstract, max_length=ORACLE_BOUND
                ):
                    violations.append((concrete, abstract))
        assert not violations, violations[:3]

    def test_oracle_refutations_are_matched_everywhere(self):
        """Refutation by the bounded oracle implies refutation by the
        fixpoint procedure (no overclaiming in either direction on the
        micro-universe)."""
        violations = []
        for concrete in SYSTEMS:
            for abstract in SYSTEMS:
                if not stabilizes_on_computations(
                    concrete, abstract, max_length=ORACLE_BOUND
                ):
                    if check_stabilization(
                        concrete, abstract, compute_steps=False
                    ).holds:
                        violations.append((concrete, abstract))
        assert not violations, violations[:3]

    def test_self_stabilization_diagonal(self):
        """On the diagonal, the fixpoint and oracle verdicts coincide
        exactly (both directions) for every system in the universe."""
        for system in SYSTEMS:
            fast = check_stabilization(system, system, compute_steps=False).holds
            slow = stabilizes_on_computations(
                system, system, max_length=ORACLE_BOUND
            )
            assert fast == slow, system
