"""Chaos-driven integration tests: injected faults, recovered verdicts.

The recovery invariants under test, end to end: a worker SIGKILLed
mid-shard changes nothing about the verdict (including the structured
``PARTIAL`` of a budgeted run — never an ``error``); an engine that
exhausts memory mid-fixpoint degrades down the vector → packed → tuple
chain with a reasoned ``engine.fallback`` event; a corrupted cache
entry reads as a miss and the verdict is recomputed; and the CLI under
a composite fault plan prints byte-identical output to the fault-free
sequential run.
"""

from __future__ import annotations

import pytest

from repro.checker import check_stabilization
from repro.obs import Recorder
from repro.parallel import parallel_available
from repro.resilience import (
    FaultAction,
    FaultPlan,
    SupervisionPolicy,
    using_chaos,
    using_policy,
)
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    dijkstra_four_state,
    dijkstra_three_state,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)

#: Fast retry schedule so injected faults do not slow the suite.
FAST = SupervisionPolicy(backoff_base=0.001, backoff_cap=0.005)

#: Kill the first attempt of the first task of every supervised phase.
KILL_FIRST = FaultPlan(
    seed=0, faults=(FaultAction(kind="kill-worker", task=0, attempt=0),)
)


def _dijkstra4():
    return (
        dijkstra_four_state(3).compile(),
        btr_program(3).compile(),
        btr4_abstraction(3),
    )


class TestWorkerDeathMidShard:
    def test_verdict_identical_after_injected_kills(self):
        concrete, spec, alpha = _dijkstra4()
        baseline = check_stabilization(concrete, spec, alpha)
        recorder = Recorder(kind="test")
        with using_policy(FAST), using_chaos(KILL_FIRST):
            chaotic = check_stabilization(
                concrete, spec, alpha, workers=4, instrumentation=recorder
            )
        assert chaotic.format() == baseline.format()
        counters = recorder.record().counters
        assert counters["resilience.worker.death"] >= 1
        assert counters["resilience.task.retries"] >= 1

    def test_budgeted_check_stays_structured_partial_not_error(self):
        """A worker dying mid-shard of a budget-capped run must not
        turn the structured PARTIAL into an exception: the budget cut
        and the fault recovery compose."""
        concrete = dijkstra_three_state(4).compile()
        spec = btr_program(4).compile()
        alpha = btr3_abstraction(4)
        baseline = check_stabilization(
            concrete, spec, alpha, state_budget=10
        )
        assert baseline.is_partial
        with using_policy(FAST), using_chaos(KILL_FIRST):
            chaotic = check_stabilization(
                concrete, spec, alpha, state_budget=10, workers=4
            )
        assert chaotic.is_partial
        assert (
            chaotic.result.partial.phase == baseline.result.partial.phase
        )

    def test_poison_every_attempt_still_converges_via_quarantine(self):
        """Killing *every* attempt of a task forces quarantine: the
        inline sequential run must still deliver the identical
        verdict (chaos worker faults are inert in the driver)."""
        concrete, spec, alpha = _dijkstra4()
        baseline = check_stabilization(concrete, spec, alpha)
        plan = FaultPlan(
            faults=(FaultAction(kind="kill-worker", task=0, attempt="*"),)
        )
        policy = SupervisionPolicy(
            max_task_retries=1, backoff_base=0.001, backoff_cap=0.005
        )
        recorder = Recorder(kind="test")
        with using_policy(policy), using_chaos(plan):
            chaotic = check_stabilization(
                concrete, spec, alpha, workers=2, instrumentation=recorder
            )
        assert chaotic.format() == baseline.format()
        counters = recorder.record().counters
        assert counters["resilience.task.quarantined"] >= 1
        assert counters["resilience.sequential_fallback"] >= 1


class TestEngineDegradation:
    def test_packed_memory_fault_degrades_to_tuple(self):
        concrete, spec, alpha = _dijkstra4()
        baseline = check_stabilization(
            concrete, spec, alpha, engine="tuple"
        )
        plan = FaultPlan(
            faults=(
                FaultAction(kind="raise-memory", engine="packed", at_states=1),
            )
        )
        recorder = Recorder(kind="test")
        with using_chaos(plan):
            degraded = check_stabilization(
                concrete, spec, alpha, engine="packed",
                instrumentation=recorder,
            )
        assert degraded.format() == baseline.format()
        record = recorder.record()
        assert record.counters["resilience.engine.fallback"] == 1
        assert record.counters["engine.fallback.tuple"] == 1
        events = [
            event for event in record.events
            if event.name == "engine.fallback"
        ]
        assert len(events) == 1
        assert events[0].fields["during"] == "runtime"
        assert "MemoryError" in events[0].fields["reason"]

    def test_vector_memory_fault_walks_the_full_chain(self):
        pytest.importorskip("numpy")
        concrete, spec, alpha = _dijkstra4()
        baseline = check_stabilization(
            concrete, spec, alpha, engine="tuple"
        )
        # Every engine with state hooks faults: vector falls to packed,
        # packed falls to tuple, and tuple (hook-less) finishes.
        plan = FaultPlan(
            faults=(
                FaultAction(kind="raise-memory", engine="*", at_states=1),
            )
        )
        recorder = Recorder(kind="test")
        with using_chaos(plan):
            degraded = check_stabilization(
                concrete, spec, alpha, engine="vector",
                instrumentation=recorder,
            )
        assert degraded.format() == baseline.format()
        assert recorder.record().counters["resilience.engine.fallback"] == 2

    def test_budget_exceeded_is_never_treated_as_an_engine_fault(self):
        """``BudgetExceeded`` is a structured PARTIAL in flight: the
        degradation chain must let it pass instead of burning through
        the remaining engines."""
        concrete = dijkstra_three_state(4).compile()
        spec = btr_program(4).compile()
        alpha = btr3_abstraction(4)
        recorder = Recorder(kind="test")
        result = check_stabilization(
            concrete, spec, alpha, state_budget=10, engine="packed",
            instrumentation=recorder,
        )
        assert result.is_partial
        assert (
            "resilience.engine.fallback"
            not in recorder.record().counters
        )


class TestCacheCorruptionRecovery:
    def test_corrupted_entry_recomputes_the_verdict(self, tmp_path):
        from repro.parallel import (
            VerificationCache,
            cache_key,
            program_fingerprint,
        )

        program = dijkstra_four_state(3)
        key = cache_key("check", [program_fingerprint(program)], {})
        plan = FaultPlan(
            faults=(FaultAction(kind="corrupt-cache", index=0),)
        )
        recorder = Recorder(kind="test")
        cache = VerificationCache(tmp_path / "cache", recorder)
        with using_chaos(plan):
            cache.put(key, {"holds": True, "text": "verdict"})
        # The chaos fault flipped a byte of the stored file: the next
        # read must refuse it rather than serve a damaged verdict.
        assert cache.get(key) is None
        counters = recorder.record().counters
        assert counters["cache.corrupt"] == 1
        # Recompute-and-overwrite restores service.
        cache.put(key, {"holds": True, "text": "verdict"})
        assert cache.get(key) == {"holds": True, "text": "verdict"}


TOY_SPEC = (
    "program toy\n"
    "var x : mod 4\n"
    "var y : mod 2\n"
    "action fix_x :: x != 0 --> x := 0\n"
    "action fix_y :: y != 0 --> y := 0\n"
    "init x == 0 && y == 0\n"
)

#: The acceptance-criteria composite: one worker kill per phase, a
#: vector-engine memory fault, and one corrupted cache entry.
COMPOSITE_PLAN = (
    '{"seed": 0, "faults": ['
    '{"kind": "kill-worker", "task": 0, "attempt": 0}, '
    '{"kind": "raise-memory", "engine": "vector", "at_states": 1}, '
    '{"kind": "corrupt-cache", "index": 0}]}'
)


class TestCliChaosDifferential:
    def test_chaotic_run_prints_byte_identical_verdict(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(TOY_SPEC, encoding="utf-8")
        code_baseline = main(["check", str(spec)])
        out_baseline = capsys.readouterr().out
        code_chaos = main(
            [
                "check", str(spec),
                "--workers", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--chaos", COMPOSITE_PLAN,
            ]
        )
        out_chaos = capsys.readouterr().out
        assert code_chaos == code_baseline
        assert out_chaos == out_baseline

    def test_corrupted_cache_never_serves_a_wrong_verdict(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(TOY_SPEC, encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        # First run stores the verdict; the chaos plan corrupts it.
        main(
            ["check", str(spec), "--cache-dir", cache_dir,
             "--chaos", '{"faults": [{"kind": "corrupt-cache", "index": 0}]}']
        )
        first = capsys.readouterr()
        assert "verification cache: stored" in first.err
        # Second run must miss (digest check), recompute, and re-store.
        code = main(["check", str(spec), "--cache-dir", cache_dir])
        second = capsys.readouterr()
        assert code == 0
        assert "verification cache: stored" in second.err
        assert second.out == first.out
        # Third run finally hits the repaired entry.
        main(["check", str(spec), "--cache-dir", cache_dir])
        third = capsys.readouterr()
        assert "verification cache: hit" in third.err
        assert third.out == first.out

    def test_bad_chaos_plan_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(TOY_SPEC, encoding="utf-8")
        code = main(
            ["check", str(spec), "--chaos", '{"faults": [{"kind": "nope"}]}']
        )
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_chaos_env_var_is_the_flagless_spelling(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        spec = tmp_path / "toy.gcl"
        spec.write_text(TOY_SPEC, encoding="utf-8")
        baseline_code = main(["check", str(spec)])
        baseline = capsys.readouterr().out
        monkeypatch.setenv(
            "REPRO_CHAOS",
            '{"faults": [{"kind": "kill-worker", "task": 0, "attempt": 0}]}',
        )
        code = main(["check", str(spec), "--workers", "2"])
        assert code == baseline_code
        assert capsys.readouterr().out == baseline
