"""Agreement between the two substrates: simulator vs model checker.

Where the checker proves stabilization, random-daemon simulations from
random corrupted states must converge within generous budgets; where
the checker finds divergence, an adversarial scheduler must be able to
realize it.  Run at sizes both substrates can handle.
"""

import random

import pytest

from repro.checker import check_stabilization
from repro.rings import (
    btr3_abstraction,
    btr_program,
    dijkstra_three_state,
    dijkstra_four_state,
    kstate_program,
    w1_program,
    w2_program,
)
from repro.rings.topology import Ring
from repro.simulation import (
    GreedyScheduler,
    PROTOCOLS,
    btr_tokens,
    convergence_trial,
    legitimacy_predicate,
    run_until,
    simulate,
)


class TestConvergenceAgreement:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_verified_protocols_converge_in_simulation(self, name):
        builder, kind = PROTOCOLS[name]
        n = 7
        program = builder(n)
        for trial in range(5):
            rng = random.Random((name, trial).__hash__())
            steps = convergence_trial(
                program, kind, n, rng, max_steps=300 * n * n
            )
            assert steps is not None, f"{name} failed to converge (trial {trial})"

    def test_simulated_convergence_never_beats_worst_case(self):
        """Simulated convergence times are bounded by the checker's
        exact worst case (on a size both substrates handle)."""
        n = 5
        result = check_stabilization(
            dijkstra_three_state(n).compile(),
            btr_program(n).compile(),
            btr3_abstraction(n),
        )
        assert result.holds
        bound = result.worst_case_steps
        program = dijkstra_three_state(n)
        predicate = legitimacy_predicate("three", n)
        for trial in range(30):
            rng = random.Random(trial)
            initial = {
                v.name: rng.choice(v.domain.values) for v in program.variables
            }
            steps = run_until(program, predicate, bound + 1, rng=rng, initial=initial)
            assert steps is not None and steps <= bound


class TestDivergenceAgreement:
    def test_adversary_realizes_checker_divergence(self):
        """The checker rejects BTR[]W1[]W2 under the unfair daemon; the
        greedy token-preserving adversary realizes the divergence."""
        n = 6
        program = (
            btr_program(n)
            .merged_with(w1_program(n, strict=True))
            .merged_with(w2_program(n), name="wrapped")
        )
        ring = Ring(n)
        initial = {v.name: False for v in program.variables}
        initial[Ring.ut(1)] = True
        initial[Ring.dt(n - 2)] = True
        adversary = GreedyScheduler(lambda env: len(btr_tokens(ring, env)))
        trace = simulate(
            program, 2000, scheduler=adversary, rng=random.Random(0),
            initial=initial,
        )
        assert len(btr_tokens(ring, trace.final())) == 2

    def test_kstate_divergence_witness_is_a_real_cycle(self):
        """K = n - 2 is refuted by the checker; its witness cycle must
        be a genuine cycle of the compiled system, entirely within
        multi-privilege states."""
        n, k = 5, 3
        from repro.rings.mappings import utr_abstraction
        from repro.rings.kstate import utr_program
        from repro.simulation import kstate_tokens

        system = kstate_program(n, k).compile()
        result = check_stabilization(
            system,
            utr_program(n).compile(),
            utr_abstraction(n, k),
            compute_steps=False,
        )
        assert not result.holds
        cycle = result.result.witness.states
        assert cycle and cycle[0] == cycle[-1]
        ring = Ring(n)
        program = kstate_program(n, k)
        for current, following in zip(cycle, cycle[1:]):
            assert system.has_transition(current, following)
            env = program.env_of(current)
            assert len(kstate_tokens(ring, env)) > 1


class TestScaleSanity:
    def test_fifty_process_ring_converges(self):
        """Far beyond checking scale: a 50-process Dijkstra-3 ring
        recovers from a random state under the random daemon."""
        n = 50
        program = dijkstra_three_state(n)
        rng = random.Random(99)
        steps = convergence_trial(program, "three", n, rng, max_steps=200 * n * n)
        assert steps is not None

    def test_four_state_scales_too(self):
        n = 40
        program = dijkstra_four_state(n)
        rng = random.Random(7)
        steps = convergence_trial(program, "four", n, rng, max_steps=200 * n * n)
        assert steps is not None
