"""Telemetry inertness and cross-process aggregation, ring-wide.

Two invariants pin the observability layer down:

* **Inertness** — recording must never perturb a verdict.  For every
  ring verification of the reproduction, on all three engines, at
  every worker count, the formatted verdict (holds/fails, witness
  states, counts) with a full :class:`~repro.obs.Recorder` attached
  must be byte-identical to the ``NULL_INSTRUMENTATION`` run.
* **Aggregation correctness** — worker processes report through their
  own recorders; the driver folds those records back in.  The folded
  totals must be consistent with what the driver itself counted
  (every batch the pool dispatched was executed by exactly one
  worker), and merged records must carry the workers' spans.
"""

from __future__ import annotations

import pytest

from repro.checker import check_convergence_refinement, check_stabilization
from repro.obs import NULL_INSTRUMENTATION, Recorder
from repro.parallel import parallel_available
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c3_composed,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)

# (name, concrete, spec, alpha, fairness, stutter_insensitive) — the
# ring verifications of the reproduction, including failing controls.
RING_CASES = [
    (
        "dijkstra4-n3",
        lambda: dijkstra_four_state(3),
        lambda: btr_program(3),
        lambda: btr4_abstraction(3),
        "none", False,
    ),
    (
        "dijkstra3-n4",
        lambda: dijkstra_three_state(4),
        lambda: btr_program(4),
        lambda: btr3_abstraction(4),
        "none", False,
    ),
    (
        "c3-composed-n3",
        lambda: c3_composed(3),
        lambda: btr_program(3),
        lambda: btr3_abstraction(3),
        "strong", True,
    ),
    (
        "kstate-n4",
        lambda: kstate_program(4, 4),
        lambda: utr_program(4),
        lambda: utr_abstraction(4, 4),
        "none", False,
    ),
    (
        "kstate-n4-k3-refuted",  # a failing case: witness must agree too
        lambda: kstate_program(4, 3),
        lambda: utr_program(4),
        lambda: utr_abstraction(4, 3),
        "none", False,
    ),
]

ENGINES = ("tuple", "packed", "vector")

WORKER_COUNTS = [1, 4] if parallel_available() else [1]


class TestTelemetryInertness:
    @pytest.mark.parametrize(
        "name,concrete,spec,alpha,fairness,stutter",
        RING_CASES,
        ids=[case[0] for case in RING_CASES],
    )
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_recording_never_changes_the_verdict(
        self, name, concrete, spec, alpha, fairness, stutter, engine, workers
    ):
        kwargs = dict(
            alpha=alpha(),
            fairness=fairness,
            stutter_insensitive=stutter,
            engine=engine,
            workers=workers,
        )
        plain = check_stabilization(
            concrete(), spec(), instrumentation=NULL_INSTRUMENTATION, **kwargs
        )
        recorded = check_stabilization(
            concrete(), spec(), instrumentation=Recorder(), **kwargs
        )
        assert plain.format() == recorded.format()
        assert plain.holds == recorded.holds
        assert plain.core == recorded.core
        assert plain.legitimate_abstract == recorded.legitimate_abstract

    @pytest.mark.parametrize("engine", ENGINES)
    def test_refinement_witness_identical_under_recording(self, engine):
        concrete = dijkstra_three_state(4)
        spec = btr_program(4)
        alpha = btr3_abstraction(4)
        plain = check_convergence_refinement(
            concrete, spec, alpha, engine=engine
        )
        recorded = check_convergence_refinement(
            concrete, spec, alpha, engine=engine, instrumentation=Recorder()
        )
        assert not plain.holds
        assert plain.format() == recorded.format()
        assert plain.witness.states == recorded.witness.states


@pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)
class TestWorkerAggregation:
    def _recorded_check(self, engine: str, workers: int) -> Recorder:
        recorder = Recorder(kind="check")
        check_stabilization(
            dijkstra_three_state(4),
            btr_program(4),
            btr3_abstraction(4),
            engine=engine,
            workers=workers,
            instrumentation=recorder,
        )
        return recorder

    @pytest.mark.parametrize("engine", ["tuple", "packed"])
    def test_worker_batches_match_driver_dispatch(self, engine):
        recorder = self._recorded_check(engine, workers=2)
        counters = recorder.counters
        # Every batch the driver dispatched ran in exactly one worker
        # and reported back, so the worker-side tally equals the
        # driver-side one after absorption.
        assert counters["parallel.worker.batches"] == counters[
            "parallel.batches"
        ]
        assert counters["parallel.workers"] == 2
        assert counters["parallel.worker.batches"] > 0

    @pytest.mark.parametrize("engine", ["tuple", "packed"])
    def test_worker_spans_survive_into_the_parent_record(self, engine):
        record = self._recorded_check(engine, workers=2).record()
        assert "parallel.worker.expand" in record.spans
        assert record.spans["parallel.worker.expand"].calls > 0
        worker_nodes = [
            node
            for node in record.tree
            if node.name == "parallel.worker.expand"
        ]
        assert worker_nodes
        # Worker subtrees fold in as roots of the parent tree.
        assert all(node.parent == -1 for node in worker_nodes)
        assert all(node.seconds >= 0.0 for node in worker_nodes)

    #: Counter families whose totals must not depend on worker count.
    SHARED_COUNTERS = (
        "check.states.enumerated",
        "check.candidates.initial",
        "check.legitimate.size",
        "check.core.size",
        "check.outside.size",
        "check.states.evicted",
    )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_counter_totals_match_single_worker_run(self, engine):
        # Merged multi-process totals must equal what the same check
        # reports in-process: the work is partitioned, not repeated.
        sequential = self._recorded_check(engine, workers=1).counters
        merged = self._recorded_check(engine, workers=4).counters
        for counter in self.SHARED_COUNTERS:
            assert sequential.get(counter) == merged.get(counter), counter
        engine_counters = {
            name
            for source in (sequential, merged)
            for name in source
            if name.startswith("engine.")
        }
        for counter in engine_counters:
            assert sequential.get(counter) == merged.get(counter), counter

    def test_worker_counter_totals_independent_of_worker_count(self):
        # The same batches run no matter how many processes share
        # them, so absorbed worker tallies must not drift with N.
        at_two = self._recorded_check("packed", workers=2).counters
        at_four = self._recorded_check("packed", workers=4).counters
        assert (
            at_two["parallel.worker.states.expanded"]
            == at_four["parallel.worker.states.expanded"]
        )
        assert (
            at_two["parallel.worker.states.scanned"]
            == at_four["parallel.worker.states.scanned"]
        )

    def test_progress_heartbeats_recorded(self):
        recorder = self._recorded_check("packed", workers=2)
        record = recorder.record()
        heartbeats = [
            event
            for event in record.events
            if event.name.startswith("progress.")
        ]
        assert heartbeats
        for event in heartbeats:
            assert set(event.fields) == {
                "round",
                "frontier",
                "states",
                "states_per_sec",
                "rss_kib",
            }
        assert record.gauges["proc.rss.kib"].value > 0
