"""Shared fixtures: small hand-built systems and cached ring instances.

Ring compilations at n=3..4 are session-scoped — dozens of tests use
them and they are deterministic, so building them once keeps the suite
fast without hiding anything.
"""

from __future__ import annotations

import pytest

from repro.core.state import StateSchema
from repro.core.system import System
from repro.rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c1_program,
    c2_program,
    c3_program,
    dijkstra_four_state,
    dijkstra_three_state,
    w1_local_program,
    w2_refined_program,
)


@pytest.fixture
def chain_schema():
    """A 5-state one-variable schema used by the toy systems."""
    return StateSchema({"at": ("a", "b", "c", "d", "e")})


@pytest.fixture
def chain_system(chain_schema):
    """a -> b -> c -> d (terminal), initial a."""
    transitions = [
        (("a",), ("b",)),
        (("b",), ("c",)),
        (("c",), ("d",)),
    ]
    return System(chain_schema, transitions, initial=[("a",)], name="chain")


@pytest.fixture
def loop_system(chain_schema):
    """a -> b -> c -> a (a cycle), e -> a (recovery), d -> e."""
    transitions = [
        (("a",), ("b",)),
        (("b",), ("c",)),
        (("c",), ("a",)),
        (("d",), ("e",)),
        (("e",), ("a",)),
    ]
    return System(chain_schema, transitions, initial=[("a",)], name="loop")


@pytest.fixture(scope="session")
def btr4_bundle():
    """(btr_system, c1_system, dijkstra4_system, alpha4) at n=4."""
    n = 4
    return (
        btr_program(n).compile(),
        c1_program(n).compile(),
        dijkstra_four_state(n).compile(),
        btr4_abstraction(n),
    )


@pytest.fixture(scope="session")
def btr3_bundle():
    """(btr_system, c2_system, dijkstra3_system, alpha3) at n=4."""
    n = 4
    return (
        btr_program(n).compile(),
        c2_program(n).compile(),
        dijkstra_three_state(n).compile(),
        btr3_abstraction(n),
    )


@pytest.fixture(scope="session")
def wrappers3():
    """(W1'' system, W2' system) at n=4."""
    n = 4
    return (w1_local_program(n).compile(), w2_refined_program(n).compile())


@pytest.fixture(scope="session")
def c3_system():
    """C3 compiled at n=4."""
    return c3_program(4).compile()
