"""Property-based tests on the token-ring protocols.

Random ring sizes, random corrupted states, random schedules — the
protocol invariants that must survive all of them.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings.btr import btr_program
from repro.rings.btr3 import dijkstra_three_state
from repro.rings.btr4 import dijkstra_four_state
from repro.rings.kstate import kstate_program
from repro.rings.tokens import count_tokens
from repro.rings.topology import Ring
from repro.simulation.metrics import (
    four_state_tokens,
    kstate_tokens,
    three_state_tokens,
)
from repro.simulation.runner import simulate

ring_sizes = st.integers(min_value=3, max_value=9)
seeds = st.integers(min_value=0, max_value=10_000)


def random_env(program, rng):
    return {v.name: rng.choice(v.domain.values) for v in program.variables}


class TestBTRInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=6), seeds)
    def test_btr_never_creates_tokens(self, n, seed):
        program = btr_program(n)
        schema = program.schema()
        rng = random.Random(seed)
        state = tuple(rng.choice((False, True)) for _ in schema.names)
        env = schema.unpack(state)
        before = count_tokens(schema, state)
        for action in program.actions:
            if action.enabled(env):
                after_env = action.execute(env)
                after = count_tokens(schema, program.state_of(after_env))
                assert after <= before


class TestDijkstra3Invariants:
    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_only_the_top_action_creates_tokens(self, n, seed):
        """The merged top action carries the token-injection role of
        the local wrapper: it may raise the count by exactly one;
        every other action is non-increasing."""
        program = dijkstra_three_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 50, rng=rng, initial=env)
        count = len(three_state_tokens(ring, trace.initial))
        for event in trace.events:
            after = len(three_state_tokens(ring, event.env))
            if after > count:
                assert event.label == "top"
                assert after == count + 1
            count = after

    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_at_least_one_token_always(self, n, seed):
        program = dijkstra_three_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 50, rng=rng, initial=env)
        for e in trace.environments():
            # zero-token states exist but are left immediately: the
            # top action (W1'' merged) is enabled in every uniform
            # configuration, so the run can never deadlock.
            if len(three_state_tokens(ring, e)) == 0:
                enabled = [
                    a for a in program.actions if a.enabled(e)
                ]
                assert enabled

    @settings(max_examples=20, deadline=None)
    @given(ring_sizes, seeds)
    def test_single_token_is_closed(self, n, seed):
        """Once exactly one token exists, every further step keeps
        exactly one token (closure of the legitimate predicate)."""
        program = dijkstra_three_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = program.env_of(next(program.initial_states()))
        trace = simulate(program, 60, rng=rng, initial=env)
        for e in trace.environments():
            assert len(three_state_tokens(ring, e)) == 1


class TestDijkstra4Invariants:
    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_always_at_least_one_token(self, n, seed):
        """The 4-state encoding cannot express zero tokens — checked on
        random trajectories at sizes beyond the exhaustive proof."""
        program = dijkstra_four_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 50, rng=rng, initial=env)
        for e in trace.environments():
            assert len(four_state_tokens(ring, e)) >= 1

    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_steps_change_count_by_at_most_one_up(self, n, seed):
        """Dijkstra-4's relaxed mid-up guard can transiently create one
        token from corrupted states; no step creates more than one."""
        program = dijkstra_four_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 50, rng=rng, initial=env)
        counts = [len(four_state_tokens(ring, e)) for e in trace.environments()]
        assert all(b <= a + 1 for a, b in zip(counts, counts[1:]))

    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_no_colocated_opposite_tokens(self, n, seed):
        program = dijkstra_four_state(n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 50, rng=rng, initial=env)
        for e in trace.environments():
            tokens = four_state_tokens(ring, e)
            positions = [flag.split(".")[1] for flag in tokens]
            assert len(set(positions)) == len(positions)


class TestKStateInvariants:
    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, st.integers(min_value=2, max_value=6), seeds)
    def test_at_least_one_privilege(self, n, k, seed):
        """The classical sum argument: some process is always
        privileged, for every K and every configuration."""
        program = kstate_program(n, k)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 40, rng=rng, initial=env)
        for e in trace.environments():
            assert len(kstate_tokens(ring, e)) >= 1

    @settings(max_examples=25, deadline=None)
    @given(ring_sizes, seeds)
    def test_privilege_count_never_increases(self, n, seed):
        program = kstate_program(n, n)
        ring = Ring(n)
        rng = random.Random(seed)
        env = random_env(program, rng)
        trace = simulate(program, 40, rng=rng, initial=env)
        counts = [len(kstate_tokens(ring, e)) for e in trace.environments()]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
