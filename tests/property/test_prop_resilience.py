"""Property-based testing of fault-transparent verdicts.

The resilience layer's core claim, stated as a property: for *any*
small program and *any* injected fault plan (worker kills across
tasks and attempts, engine memory faults at arbitrary thresholds),
the supervised parallel verdict renders identically to the fault-free
sequential one.  Hypothesis drives both the program generator (shared
with ``test_prop_parallel``) and the fault-plan generator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_self_stabilization
from repro.parallel import parallel_available
from repro.resilience import (
    FaultAction,
    FaultPlan,
    SupervisionPolicy,
    using_chaos,
    using_policy,
)

from tests.property.test_prop_parallel import small_programs

import pytest

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)

#: Fast retries so injected kills cost milliseconds, not seconds.
FAST = SupervisionPolicy(backoff_base=0.001, backoff_cap=0.005)


@st.composite
def fault_plans(draw):
    """Random recoverable fault plans.

    Worker kills stay on bounded attempts (the default policy allows
    two retries, so attempts 0 and 1 always leave a clean third try —
    and even exhausting them only quarantines, which also recovers).
    Engine faults pick arbitrary thresholds; the degradation chain
    ends in the hook-less tuple engine, so every plan is survivable.
    """
    count = draw(st.integers(min_value=1, max_value=3))
    faults = []
    for _ in range(count):
        kind = draw(st.sampled_from(["kill-worker", "raise-memory"]))
        if kind == "kill-worker":
            faults.append(
                FaultAction(
                    kind="kill-worker",
                    task=draw(
                        st.one_of(
                            st.just("*"),
                            st.integers(min_value=0, max_value=3),
                        )
                    ),
                    attempt=draw(st.integers(min_value=0, max_value=1)),
                )
            )
        else:
            faults.append(
                FaultAction(
                    kind="raise-memory",
                    engine=draw(st.sampled_from(["packed", "*"])),
                    at_states=draw(st.integers(min_value=1, max_value=20)),
                )
            )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return FaultPlan(seed=seed, faults=tuple(faults))


class TestFaultTransparency:
    @settings(max_examples=8, deadline=None)
    @given(small_programs(), fault_plans())
    def test_supervised_verdict_equals_sequential_under_any_plan(
        self, program, plan
    ):
        baseline = check_self_stabilization(program)
        with using_policy(FAST), using_chaos(plan):
            chaotic = check_self_stabilization(program, workers=2)
        assert chaotic.format() == baseline.format()
        assert chaotic.holds == baseline.holds

    @settings(max_examples=8, deadline=None)
    @given(small_programs(), st.integers(min_value=1, max_value=10))
    def test_engine_faults_never_perturb_the_verdict(
        self, program, threshold
    ):
        baseline = check_self_stabilization(program, engine="tuple")
        plan = FaultPlan(
            faults=(
                FaultAction(
                    kind="raise-memory", engine="*", at_states=threshold
                ),
            )
        )
        with using_chaos(plan):
            degraded = check_self_stabilization(program, engine="packed")
        assert degraded.format() == baseline.format()
