"""Property-based fuzzing of whole guarded-command programs.

Random well-typed programs (all variables over ``mod K``, all writes
through modular arithmetic, hence always in-domain) must:

* compile deterministically,
* round-trip through the pretty-printer and parser to an *equal*
  automaton,
* satisfy the daemon algebra (central ⊆ distributed; synchronous
  singleton-step inclusion for singleton-enabled states).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcl.action import GuardedAction
from repro.gcl.daemon import CentralDaemon, DistributedDaemon
from repro.gcl.domain import ModularDomain
from repro.gcl.expr import (
    AddMod,
    And,
    Const,
    Eq,
    Ite,
    Ne,
    Not,
    Or,
    SubMod,
    Var,
)
from repro.gcl.parser import parse_program
from repro.gcl.pretty import render_program
from repro.gcl.program import Program
from repro.gcl.variable import Variable

MODULUS = 3
VAR_NAMES = ("u", "w.0", "w.1")


@st.composite
def guard_exprs(draw, depth=0):
    if depth >= 2:
        kind = draw(st.sampled_from(["eq", "ne", "const"]))
    else:
        kind = draw(st.sampled_from(["eq", "ne", "and", "or", "not", "const"]))
    if kind == "const":
        return Const(draw(st.booleans()))
    if kind in ("eq", "ne"):
        left = Var(draw(st.sampled_from(VAR_NAMES)))
        right = draw(
            st.one_of(
                st.sampled_from([Var(name) for name in VAR_NAMES]),
                st.integers(min_value=0, max_value=MODULUS - 1).map(Const),
            )
        )
        return Eq(left, right) if kind == "eq" else Ne(left, right)
    if kind == "not":
        return Not(draw(guard_exprs(depth=depth + 1)))
    left = draw(guard_exprs(depth=depth + 1))
    right = draw(guard_exprs(depth=depth + 1))
    return (And if kind == "and" else Or)(left, right)


@st.composite
def value_exprs(draw, depth=0):
    if depth >= 2:
        return draw(
            st.one_of(
                st.sampled_from([Var(name) for name in VAR_NAMES]),
                st.integers(min_value=0, max_value=MODULUS - 1).map(Const),
            )
        )
    kind = draw(st.sampled_from(["var", "const", "addmod", "submod", "ite"]))
    if kind == "var":
        return Var(draw(st.sampled_from(VAR_NAMES)))
    if kind == "const":
        return Const(draw(st.integers(min_value=0, max_value=MODULUS - 1)))
    if kind in ("addmod", "submod"):
        left = draw(value_exprs(depth=depth + 1))
        right = draw(value_exprs(depth=depth + 1))
        return (AddMod if kind == "addmod" else SubMod)(left, right, MODULUS)
    return Ite(
        draw(guard_exprs(depth=depth + 1)),
        draw(value_exprs(depth=depth + 1)),
        draw(value_exprs(depth=depth + 1)),
    )


@st.composite
def programs(draw):
    n_actions = draw(st.integers(min_value=1, max_value=4))
    actions = []
    for index in range(n_actions):
        targets = draw(
            st.lists(st.sampled_from(VAR_NAMES), min_size=1, max_size=2,
                     unique=True)
        )
        assignments = {name: draw(value_exprs()) for name in targets}
        actions.append(
            GuardedAction(f"act.{index}", draw(guard_exprs()), assignments)
        )
    variables = [Variable(name, ModularDomain(MODULUS)) for name in VAR_NAMES]
    init = Eq(Var("u"), Const(0))
    return Program("fuzzed", variables, actions, init=init)


class TestProgramFuzz:
    @settings(max_examples=100, deadline=None)
    @given(programs())
    def test_render_parse_compile_roundtrip(self, program):
        rendered = render_program(program)
        reparsed = parse_program(rendered)
        assert program.compile() == reparsed.compile()

    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_compilation_is_deterministic(self, program):
        assert program.compile() == program.compile()

    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_central_transitions_subset_of_distributed(self, program):
        central = set(program.compile(CentralDaemon()).transitions())
        distributed = set(
            program.compile(DistributedDaemon(max_concurrency=2)).transitions()
        )
        assert central <= distributed

    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_labels_cover_every_transition(self, program):
        system = program.compile()
        action_names = {action.name for action in program.actions}
        for source, target in system.transitions():
            labels = system.labels_of(source, target)
            assert labels and labels <= action_names

    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_enabled_actions_match_transitions(self, program):
        """A state has outgoing transitions iff some guard holds there."""
        system = program.compile()
        for state in program.schema().states():
            enabled = program.enabled_actions(state)
            assert bool(enabled) == bool(system.successors(state))
