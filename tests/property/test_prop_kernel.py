"""Property-based differential testing of the packed kernel engine.

Random small guarded-command programs (same generator design as
``test_prop_parallel``) drive the packed engine against the tuple
engine: interning must round-trip every state in enumeration order,
the lowered successor kernel must agree with the compiled transition
table, the bitset fixpoints must compute the tuple sets exactly, and
the full verdicts — stabilization and convergence refinement, witness
rendering included — must be byte-identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_convergence_refinement, check_self_stabilization
from repro.gcl.action import GuardedAction
from repro.gcl.domain import ModularDomain
from repro.gcl.expr import AddMod, Const, Eq, Ne, Var
from repro.gcl.program import Program
from repro.gcl.variable import Variable
from repro.kernel import (
    PackedKernel,
    StateInterner,
    codes_of_flags,
    packed_reachable,
    packed_terminals,
)

MODULUS = 3
VAR_NAMES = ("u", "w.0")


@st.composite
def small_programs(draw):
    """Random well-typed two-variable programs over ``mod 3``."""
    n_actions = draw(st.integers(min_value=1, max_value=3))
    actions = []
    for index in range(n_actions):
        guard_var = draw(st.sampled_from(VAR_NAMES))
        guard_value = draw(st.integers(min_value=0, max_value=MODULUS - 1))
        guard_kind = draw(st.sampled_from([Eq, Ne]))
        target = draw(st.sampled_from(VAR_NAMES))
        effect = draw(
            st.one_of(
                st.integers(min_value=0, max_value=MODULUS - 1).map(Const),
                st.sampled_from(
                    [AddMod(Var(name), Const(1), MODULUS) for name in VAR_NAMES]
                ),
            )
        )
        actions.append(
            GuardedAction(
                f"act.{index}",
                guard_kind(Var(guard_var), Const(guard_value)),
                {target: effect},
            )
        )
    variables = [Variable(name, ModularDomain(MODULUS)) for name in VAR_NAMES]
    init = Eq(Var("u"), Const(0))
    return Program("fuzzed", variables, actions, init=init)


class TestPackedPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_interning_round_trips_in_enumeration_order(self, program):
        schema = program.schema()
        interner = StateInterner(schema)
        for code, state in enumerate(schema.states()):
            assert interner.encode(state) == code
            assert interner.decode(code) == state

    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_kernel_successors_match_the_compiled_table(self, program):
        kernel = PackedKernel.from_program(program)
        system = program.compile()
        for code, state in enumerate(system.schema.states()):
            expected = sorted(
                kernel.interner.encode(s) for s in system.successors(state)
            )
            assert list(kernel.successors(code)) == expected

    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_packed_reachable_equals_tuple_reachable(self, program):
        kernel = PackedKernel.from_program(program)
        system = program.compile()
        flags = packed_reachable(
            kernel.successors, kernel.initial_codes, kernel.size
        )
        decoded = {kernel.interner.decode(c) for c in codes_of_flags(flags)}
        assert decoded == set(system.reachable())

    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_packed_terminals_equal_tuple_terminals(self, program):
        kernel = PackedKernel.from_program(program)
        system = program.compile()
        everywhere = bytearray(b"\x01") * kernel.size
        decoded = {
            kernel.interner.decode(c)
            for c in packed_terminals(kernel.successors, everywhere)
        }
        expected = {
            state
            for state in system.schema.states()
            if system.is_terminal(state)
        }
        assert decoded == expected


class TestPackedVerdicts:
    @settings(max_examples=25, deadline=None)
    @given(small_programs())
    def test_self_stabilization_verdict_identical(self, program):
        """End to end: the full decision procedure renders the same
        verdict — witness states included — on both engines."""
        tuple_verdict = check_self_stabilization(
            program, compute_steps=False, engine="tuple"
        )
        packed_verdict = check_self_stabilization(
            program, compute_steps=False, engine="packed"
        )
        assert tuple_verdict.format() == packed_verdict.format()
        assert tuple_verdict.core == packed_verdict.core
        assert (
            tuple_verdict.legitimate_abstract
            == packed_verdict.legitimate_abstract
        )

    @settings(max_examples=25, deadline=None)
    @given(small_programs(), small_programs())
    def test_convergence_refinement_verdict_identical(self, concrete, spec):
        tuple_verdict = check_convergence_refinement(
            concrete, spec, engine="tuple"
        )
        packed_verdict = check_convergence_refinement(
            concrete, spec, engine="packed"
        )
        assert tuple_verdict.format() == packed_verdict.format()

    @settings(max_examples=15, deadline=None)
    @given(small_programs(), small_programs())
    def test_stutter_insensitive_refinement_identical(self, concrete, spec):
        tuple_verdict = check_convergence_refinement(
            concrete, spec, stutter_insensitive=True, engine="tuple"
        )
        packed_verdict = check_convergence_refinement(
            concrete, spec, stutter_insensitive=True, engine="packed"
        )
        assert tuple_verdict.format() == packed_verdict.format()
