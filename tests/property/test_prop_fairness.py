"""Cross-validation of the strong-fairness trap analysis.

``find_fair_trap`` decides whether a strongly fair infinite run can
stay inside a region.  An independent oracle decides the same question
by brute force on tiny graphs: a strongly fair run confined to the
region exists iff there is a *fair closed walk* — a closed walk, within
the region, such that every action enabled at any state the walk
visits also fires somewhere along the walk.  (Looping such a walk
forever satisfies every strong-fairness obligation it incurs.)

The oracle enumerates closed walks up to a length bound that is
exhaustive for the graph sizes used (a walk that covers distinct
obligations never needs to be longer than |region| * (#actions + 1)
here), so agreement over the random corpus is strong evidence both
implementations decide the same relation.
"""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.fairness import find_fair_trap
from repro.core.state import StateSchema
from repro.core.system import System

N_STATES = 4
SCHEMA = StateSchema({"v": tuple(range(N_STATES))})
ACTIONS = ("a", "b", "c")


@st.composite
def labelled_systems(draw):
    n_edges = draw(st.integers(min_value=0, max_value=7))
    pairs = []
    labels = {}
    for _ in range(n_edges):
        source = (draw(st.integers(min_value=0, max_value=N_STATES - 1)),)
        target = (draw(st.integers(min_value=0, max_value=N_STATES - 1)),)
        action = draw(st.sampled_from(ACTIONS))
        pairs.append((source, target))
        labels.setdefault((source, target), set()).add(action)
    return System(SCHEMA, pairs, initial=[], name="rand", labels=labels)


def _edge_actions(system, source, target):
    labels = system.labels_of(source, target)
    if labels:
        return labels
    return frozenset((f"<anon {source!r}->{target!r}>",))


def _enabled_at(system, state):
    names = set()
    for target in system.successors(state):
        names |= _edge_actions(system, state, target)
    return names


def fair_closed_walk_exists(system, region, max_length=16):
    """Brute-force oracle: DFS over (state, path) for closed walks whose
    visited obligations are all discharged on the walk itself."""
    region = set(region)

    edges = [
        (s, t, a)
        for s in region
        for t in system.successors(s)
        if t in region
        for a in _edge_actions(system, s, t)
    ]
    if not edges:
        return False

    # Depth-first over walks, tracking (visited states, fired actions).
    for start in sorted(region, key=repr):
        stack = [(start, (start,), frozenset())]
        while stack:
            state, path, fired = stack.pop()
            if len(path) > max_length:
                continue
            for target in sorted(system.successors(state), key=repr):
                if target not in region:
                    continue
                new_fired = fired | _edge_actions(system, state, target)
                new_path = path + (target,)
                if target == start:
                    obligations = set()
                    for visited in set(new_path):
                        obligations |= _enabled_at(system, visited)
                    if obligations <= new_fired:
                        return True
                stack.append((target, new_path, new_fired))
    return False


class TestFairTrapAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(labelled_systems(), st.data())
    def test_agreement_on_random_regions(self, system, data):
        region_bits = data.draw(
            st.lists(st.booleans(), min_size=N_STATES, max_size=N_STATES)
        )
        region = [(v,) for v in range(N_STATES) if region_bits[v]]
        trap = find_fair_trap(system, region)
        oracle = fair_closed_walk_exists(system, region)
        assert (trap is not None) == oracle, (
            f"disagreement: trap={trap}, oracle={oracle}, "
            f"edges={sorted(system.transitions())}, region={region}"
        )

    @settings(max_examples=80, deadline=None)
    @given(labelled_systems())
    def test_trap_states_lie_in_the_region(self, system):
        region = [(v,) for v in range(N_STATES)]
        trap = find_fair_trap(system, region)
        if trap is not None:
            assert trap <= set(region)

    @settings(max_examples=80, deadline=None)
    @given(labelled_systems())
    def test_trap_is_internally_sustainable(self, system):
        """Every action enabled at a trap state has a transition within
        the trap — the defining property of the returned set."""
        region = [(v,) for v in range(N_STATES)]
        trap = find_fair_trap(system, region)
        if trap is None:
            return
        internal_actions = set()
        for source in trap:
            for target in system.successors(source):
                if target in trap:
                    internal_actions |= _edge_actions(system, source, target)
        for state in trap:
            assert _enabled_at(system, state) <= internal_actions
