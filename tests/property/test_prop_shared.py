"""Property-based differential testing of the shared-memory engine.

Random well-typed programs drive the streamed kernel against the
references: chunk-streamed successor enumeration must agree with the
vector kernel at *every* chunk size (streaming is a partition of the
work, never a change to it), the frontier/core fixpoints must compute
the same sets bit for bit, and the full shared-engine stabilization
verdict — selected explicitly or upgraded from a ``--mem-budget``
context — must render byte-identically to the sequential tuple
engine.  Programs here use a mod-5 space (25 states) so they clear
``SHARED_MIN_STATES`` and the shared engine genuinely runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_self_stabilization
from repro.gcl.action import GuardedAction
from repro.gcl.domain import ModularDomain
from repro.gcl.expr import AddMod, Const, Eq, Ne, Var
from repro.gcl.program import Program
from repro.gcl.variable import Variable
from repro.kernel.shared import SHARED_MIN_STATES, using_memory_budget
from repro.kernel.vector import numpy_available
from repro.obs import Recorder

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed"
)

MODULUS = 5
VAR_NAMES = ("u", "w.0")


@st.composite
def shared_programs(draw):
    """Random two-variable programs over ``mod 5`` — 25 states, large
    enough that a shared-engine request is honoured, small enough to
    cross-check exhaustively."""
    n_actions = draw(st.integers(min_value=1, max_value=3))
    actions = []
    for index in range(n_actions):
        guard_var = draw(st.sampled_from(VAR_NAMES))
        guard_value = draw(st.integers(min_value=0, max_value=MODULUS - 1))
        guard_kind = draw(st.sampled_from([Eq, Ne]))
        target = draw(st.sampled_from(VAR_NAMES))
        effect = draw(
            st.one_of(
                st.integers(min_value=0, max_value=MODULUS - 1).map(Const),
                st.sampled_from(
                    [AddMod(Var(name), Const(1), MODULUS) for name in VAR_NAMES]
                ),
            )
        )
        actions.append(
            GuardedAction(
                f"act.{index}",
                guard_kind(Var(guard_var), Const(guard_value)),
                {target: effect},
            )
        )
    variables = [Variable(name, ModularDomain(MODULUS)) for name in VAR_NAMES]
    init = Eq(Var("u"), Const(0))
    return Program("fuzzed", variables, actions, init=init)


@needs_numpy
class TestSharedPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(shared_programs(), st.integers(min_value=3, max_value=40))
    def test_streamed_successors_match_vector_at_any_chunk(
        self, program, chunk
    ):
        """Chunking partitions the evaluation; it must never change it."""
        import numpy as np

        from repro.kernel.shared import SharedKernel
        from repro.kernel.vector import as_vector_kernel

        shared = SharedKernel(program, chunk=chunk)
        vector = as_vector_kernel(program)
        assert shared.initial_codes == vector.initial_codes
        codes = np.arange(shared.size, dtype=np.int64)
        shared_origins, shared_targets = shared.succ_pairs(codes)
        vector_origins, vector_targets = vector.succ_pairs(codes)
        assert shared_origins.tolist() == vector_origins.tolist()
        assert shared_targets.tolist() == vector_targets.tolist()

    @settings(max_examples=40, deadline=None)
    @given(shared_programs(), st.integers(min_value=3, max_value=40))
    def test_shared_reachable_equals_vector_reachable(self, program, chunk):
        import numpy as np

        from repro.kernel.shared import (
            SharedKernel,
            open_runtime,
            shared_reachable,
        )
        from repro.kernel.vector import as_vector_kernel, vector_reachable

        shared = SharedKernel(program, chunk=chunk)
        vector = as_vector_kernel(program)
        expected = np.nonzero(
            vector_reachable(vector, vector.initial_array)
        )[0].tolist()
        with open_runtime(shared) as runtime:
            visited = shared_reachable(
                shared, shared.initial_array, runtime
            )
            reached = [
                int(code)
                for member in visited.member_chunks(chunk)
                for code in member.tolist()
            ]
        assert reached == expected


@needs_numpy
class TestSpillRoundTrips:
    """Spill encodings must be lossless at every awkward boundary."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 40)),
            min_size=0,
            max_size=200,
            unique=True,
        ),
        st.sampled_from([2, 4, 8]),
    )
    def test_delta_encoding_round_trips_any_sorted_run(self, codes, width):
        """Diff widths 1/2/4/8 are chosen per run; whatever is chosen
        must invert exactly, at every storage width that fits."""
        import numpy as np

        from repro.kernel.shared import SpillStore
        from repro.kernel.shared.width import code_dtype

        dtype = {2: np.int16, 4: np.int32, 8: np.int64}[width]
        limit = int(np.iinfo(dtype).max)
        codes = sorted(code for code in codes if code <= limit)
        with SpillStore(code_dtype=dtype) as store:
            array = np.asarray(codes, dtype=np.int64)
            handle = store.save_sorted(array.astype(dtype))
            loaded = store.load(handle)
            assert loaded.dtype == np.dtype(dtype)
            assert loaded.tolist() == codes
        assert code_dtype(limit).itemsize <= width

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.randoms(use_true_random=False),
    )
    def test_code_runs_round_trip_at_exact_cap_boundaries(
        self, run_count, jitter, rnd
    ):
        """Runs sized to land exactly on (and one element around) the
        64K resident cap must stream back identically, spilled or not."""
        import numpy as np

        from repro.kernel.shared import CodeRuns, SpillStore

        cap = 1 << 16
        per_run = cap // 8 + (jitter - 1)  # straddle the exact boundary
        with SpillStore() as store:
            runs = CodeRuns(store, cap, dtype=np.int64)
            originals = []
            base = 0
            for _ in range(run_count):
                stride = rnd.randint(1, 5)
                codes = base + np.arange(per_run, dtype=np.int64) * stride
                base = int(codes[-1]) + rnd.randint(1, 1000)
                originals.append(codes)
                runs.append(codes)
            streamed = list(runs.chunks())
            assert len(streamed) == len(originals)
            for out, original in zip(streamed, originals):
                assert out.tolist() == original.tolist()
            assert runs.count == sum(len(o) for o in originals)
            runs.clear()

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(
            [(1 << 15) - 1, 1 << 15, (1 << 15) + 1, (1 << 15) + 977]
        ),
        st.integers(min_value=0, max_value=1000),
    )
    def test_width_promotion_edges_round_trip_through_spill(
        self, size, offset
    ):
        """Codes near the int16/int32 promotion edge, stored at the
        width the module chooses for that size, must survive a full
        spill round trip — the closed-edge rule in executable form."""
        import numpy as np

        from repro.kernel.shared import CodeRuns, SpillStore
        from repro.kernel.shared.width import code_dtype, code_width

        dtype = code_dtype(size)
        assert code_width(size) == (2 if size <= (1 << 15) else 4)
        top = size - 1
        codes = np.unique(
            np.clip(
                np.asarray(
                    [0, 1, offset, top - 1, top], dtype=np.int64
                ),
                0,
                top,
            )
        )
        with SpillStore(code_dtype=dtype) as store:
            runs = CodeRuns(store, 1 << 16, dtype=dtype)
            runs.append(codes)
            (out,) = list(runs.chunks())
            assert out.dtype == dtype
            assert int(out.max()) == top
            assert out.tolist() == codes.tolist()
            handle = store.save_sorted(out)
            assert store.load(handle).tolist() == codes.tolist()


class TestSharedVerdicts:
    @settings(max_examples=25, deadline=None)
    @given(shared_programs())
    def test_self_stabilization_verdict_identical(self, program):
        """End to end against the sequential reference, witness states
        included.  On a pure-Python install the shared request walks
        the fallback chain, which must render the same verdict anyway.
        """
        assert program.schema().size() >= SHARED_MIN_STATES
        tuple_verdict = check_self_stabilization(
            program, compute_steps=False, engine="tuple"
        )
        shared_verdict = check_self_stabilization(
            program, compute_steps=False, engine="shared"
        )
        assert shared_verdict.format() == tuple_verdict.format()
        assert shared_verdict.core == tuple_verdict.core
        assert (
            shared_verdict.legitimate_abstract
            == tuple_verdict.legitimate_abstract
        )

    @settings(max_examples=15, deadline=None)
    @given(shared_programs())
    def test_memory_context_upgrade_is_transparent(self, program):
        """A ``--mem-budget`` context upgrades vector requests to the
        shared engine without changing a byte of the verdict."""
        plain = check_self_stabilization(
            program, compute_steps=False, engine="vector"
        )
        recorder = Recorder()
        with using_memory_budget("4M"):
            streamed = check_self_stabilization(
                program, compute_steps=False, engine="vector",
                instrumentation=recorder,
            )
        assert streamed.format() == plain.format()
        if numpy_available():
            assert recorder.record().counters["engine.shared"] == 1

    @settings(max_examples=15, deadline=None)
    @given(shared_programs())
    def test_fallback_verdict_identical_without_numpy(self, program):
        """With availability forced off, a shared request must degrade
        down the chain and still match the packed verdict."""
        from repro.kernel.vector import availability

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(availability, "HAVE_NUMPY", False)
            recorder = Recorder()
            fallback_verdict = check_self_stabilization(
                program, compute_steps=False, engine="shared",
                instrumentation=recorder,
            )
        packed_verdict = check_self_stabilization(
            program, compute_steps=False, engine="packed"
        )
        assert fallback_verdict.format() == packed_verdict.format()
        counters = recorder.record().counters
        assert counters["engine.fallback.vector"] == 1
        assert counters["engine.packed"] == 1
