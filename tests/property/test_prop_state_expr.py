"""Property-based tests for state schemas and the expression language."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import StateSchema
from repro.gcl.expr import (
    Add,
    AddMod,
    And,
    Const,
    Eq,
    Expr,
    Ite,
    Lt,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Sub,
    SubMod,
    Var,
)
from repro.gcl.parser import parse_expression

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

variable_names = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=4, unique=True
)
domains = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=4, unique=True
)


@st.composite
def schemas(draw):
    names = draw(variable_names)
    return StateSchema({name: tuple(draw(domains)) for name in names})


class TestSchemaProperties:
    @given(schemas(), st.data())
    def test_pack_unpack_roundtrip(self, schema, data):
        assignment = {
            name: data.draw(st.sampled_from(schema.domain_of(name)))
            for name in schema.names
        }
        assert schema.unpack(schema.pack(assignment)) == assignment

    @given(schemas())
    def test_enumeration_count_matches_size(self, schema):
        assert len(list(schema.states())) == schema.size()

    @given(schemas(), st.data())
    def test_replace_changes_only_named_component(self, schema, data):
        state = next(iter(schema.states()))
        name = data.draw(st.sampled_from(list(schema.names)))
        value = data.draw(st.sampled_from(schema.domain_of(name)))
        updated = schema.replace(state, **{name: value})
        assert schema.value(updated, name) == value
        for other in schema.names:
            if other != name:
                assert schema.value(updated, other) == schema.value(state, other)


# ---------------------------------------------------------------------------
# Expressions: random trees render -> parse -> evaluate identically
# ---------------------------------------------------------------------------

ENV_VARS = ("x", "y", "z")


@st.composite
def int_exprs(draw, depth=0) -> Expr:
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Var(draw(st.sampled_from(ENV_VARS)))
        return Const(draw(st.integers(min_value=0, max_value=7)))
    kind = draw(st.sampled_from(["add", "sub", "mul", "addmod", "submod", "ite"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    if kind == "add":
        return Add(left, right)
    if kind == "sub":
        return Sub(left, right)
    if kind == "mul":
        return Mul(left, right)
    if kind == "addmod":
        return AddMod(left, right, draw(st.integers(min_value=1, max_value=5)))
    if kind == "submod":
        return SubMod(left, right, draw(st.integers(min_value=1, max_value=5)))
    condition = draw(bool_exprs(depth=depth + 1))
    return Ite(condition, left, right)


@st.composite
def bool_exprs(draw, depth=0) -> Expr:
    if depth >= 3:
        return Const(draw(st.booleans()))
    kind = draw(
        st.sampled_from(["const", "eq", "ne", "lt", "and", "or", "not"])
    )
    if kind == "const":
        return Const(draw(st.booleans()))
    if kind in ("eq", "ne", "lt"):
        left = draw(int_exprs(depth=depth + 1))
        right = draw(int_exprs(depth=depth + 1))
        return {"eq": Eq, "ne": Ne, "lt": Lt}[kind](left, right)
    if kind == "not":
        return Not(draw(bool_exprs(depth=depth + 1)))
    left = draw(bool_exprs(depth=depth + 1))
    right = draw(bool_exprs(depth=depth + 1))
    return (And if kind == "and" else Or)(left, right)


environments = st.fixed_dictionaries(
    {name: st.integers(min_value=0, max_value=7) for name in ENV_VARS}
)


class TestExpressionProperties:
    @settings(max_examples=200)
    @given(int_exprs(), environments)
    def test_render_parse_eval_roundtrip_int(self, expr, env):
        reparsed = parse_expression(expr.render())
        assert reparsed.eval(env) == expr.eval(env)

    @settings(max_examples=200)
    @given(bool_exprs(), environments)
    def test_render_parse_eval_roundtrip_bool(self, expr, env):
        reparsed = parse_expression(expr.render())
        assert reparsed.eval(env) == expr.eval(env)

    @given(int_exprs())
    def test_structural_equality_after_reparse(self, expr):
        """Rendering is faithful enough that re-rendering is stable."""
        reparsed = parse_expression(expr.render())
        assert parse_expression(reparsed.render()) == reparsed

    @given(int_exprs(), environments)
    def test_free_variables_bound_evaluation(self, expr, env):
        restricted = {
            name: value
            for name, value in env.items()
            if name in expr.free_variables()
        }
        assert expr.eval(restricted) == expr.eval(env)

    @given(int_exprs(), int_exprs(), st.integers(min_value=1, max_value=5),
           environments)
    def test_addmod_matches_mod_of_add(self, left, right, modulus, env):
        direct = AddMod(left, right, modulus).eval(env)
        composed = Mod(Add(left, right), Const(modulus)).eval(env)
        assert direct == composed
