"""Property-based tests on random transition systems.

Hypothesis-generated automata over a fixed 5-state space exercise the
algebra of the box operator and the implication structure between the
refinement relations and stabilization — the paper's Section 2
reformulated as executable properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import (
    check_convergence_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    check_stabilization,
)
from repro.core.composition import box
from repro.core.state import StateSchema
from repro.core.system import System

SCHEMA = StateSchema({"v": tuple(range(5))})
ALL_PAIRS = [((a,), (b,)) for a in range(5) for b in range(5)]


@st.composite
def systems(draw, name="S"):
    transitions = draw(
        st.lists(st.sampled_from(ALL_PAIRS), min_size=0, max_size=12)
    )
    initial = draw(
        st.lists(
            st.sampled_from([(v,) for v in range(5)]), min_size=1, max_size=2
        )
    )
    return System(SCHEMA, transitions, initial=initial, name=name)


@st.composite
def system_pairs(draw):
    """(concrete, abstract) where concrete's relation is a subset."""
    abstract = draw(systems(name="A"))
    pairs = list(abstract.transitions())
    kept = draw(st.lists(st.sampled_from(pairs), max_size=len(pairs))) if pairs else []
    concrete = System(SCHEMA, kept, initial=abstract.initial, name="C")
    return concrete, abstract


class TestBoxAlgebra:
    @settings(max_examples=60)
    @given(systems(), systems())
    def test_commutative(self, a, b):
        assert box(a, b) == box(b, a)

    @settings(max_examples=60)
    @given(systems(), systems(), systems())
    def test_associative(self, a, b, c):
        assert box(box(a, b), c) == box(a, box(b, c))

    @settings(max_examples=60)
    @given(systems())
    def test_idempotent(self, a):
        assert box(a, a) == a

    @settings(max_examples=60)
    @given(systems(), systems())
    def test_operands_everywhere_refine_composite(self, a, b):
        """Each operand's transitions survive in the union, so each is
        an (open) everywhere refinement of the composite."""
        composite = box(a, b)
        assert check_everywhere_refinement(a, composite, open_systems=True).holds
        assert check_everywhere_refinement(b, composite, open_systems=True).holds


class TestRefinementHierarchy:
    @settings(max_examples=80)
    @given(system_pairs())
    def test_everywhere_and_init_imply_convergence(self, pair):
        concrete, abstract = pair
        everywhere = check_everywhere_refinement(concrete, abstract).holds
        init = check_init_refinement(concrete, abstract).holds
        if everywhere and init:
            assert check_convergence_refinement(concrete, abstract).holds

    @settings(max_examples=80)
    @given(system_pairs())
    def test_convergence_implies_init(self, pair):
        concrete, abstract = pair
        if check_convergence_refinement(concrete, abstract).holds:
            assert check_init_refinement(concrete, abstract).holds

    @settings(max_examples=80)
    @given(systems())
    def test_every_system_convergence_refines_itself(self, system):
        assert check_convergence_refinement(system, system).holds


class TestStabilizationProperties:
    @settings(max_examples=80)
    @given(systems())
    def test_self_stabilization_is_stabilization_to_self(self, system):
        from repro.checker import check_self_stabilization

        direct = check_self_stabilization(system, compute_steps=False).holds
        indirect = check_stabilization(system, system, compute_steps=False).holds
        assert direct == indirect

    @settings(max_examples=60)
    @given(system_pairs(), systems())
    def test_theorem0_on_random_instances(self, pair, target):
        """[C (= A] and A stabilizing to B imply C stabilizing to B."""
        concrete, abstract = pair
        if not check_everywhere_refinement(concrete, abstract).holds:
            return
        if not check_init_refinement(concrete, abstract).holds:
            return
        if not check_stabilization(abstract, target, compute_steps=False).holds:
            return
        assert check_stabilization(concrete, target, compute_steps=False).holds

    @settings(max_examples=60)
    @given(systems(), systems())
    def test_quiet_wrappers_preserve_legitimate_states(self, base, wrapper):
        """A wrapper that never fires inside the base's legitimate
        states (the shape of every wrapper in the paper) leaves all of
        them in the composite's behavioural core — when the composite
        stabilizes at all.  (A wrapper enabled inside legitimate states
        may transiently leave them, so the guard is necessary;
        hypothesis found the counterexample.)"""
        legitimate = base.reachable()
        quiet = all(
            source not in legitimate for source, _ in wrapper.transitions()
        ) and not (wrapper.initial - base.initial)
        composite = box(base, wrapper)
        result = check_stabilization(composite, base, compute_steps=False)
        if result.holds and quiet:
            assert legitimate <= result.core
