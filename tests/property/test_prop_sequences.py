"""Property-based tests for sequence predicates and convergence isomorphism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.computation import (
    is_subsequence,
    is_suffix,
    omission_count,
    remove_stutter,
    subsequence_embedding,
    suffixes,
)
from repro.core.isomorphism import is_convergence_isomorphism

# Small alphabets maximize collision-rich structure per example.
items = st.integers(min_value=0, max_value=3)
sequences = st.lists(items, min_size=0, max_size=12)
nonempty = st.lists(items, min_size=1, max_size=12)


class TestSubsequenceProperties:
    @given(sequences)
    def test_reflexive(self, xs):
        assert is_subsequence(xs, xs)

    @given(sequences, st.data())
    def test_every_deletion_yields_a_subsequence(self, xs, data):
        if not xs:
            return
        index = data.draw(st.integers(min_value=0, max_value=len(xs) - 1))
        shorter = xs[:index] + xs[index + 1:]
        assert is_subsequence(shorter, xs)

    @given(sequences, sequences, sequences)
    def test_transitive(self, a, b, c):
        if is_subsequence(a, b) and is_subsequence(b, c):
            assert is_subsequence(a, c)

    @given(sequences, sequences)
    def test_antisymmetric_up_to_equality(self, a, b):
        if is_subsequence(a, b) and is_subsequence(b, a):
            assert a == b

    @given(sequences, sequences)
    def test_embedding_is_a_valid_witness(self, a, b):
        embedding = subsequence_embedding(a, b)
        if embedding is not None:
            assert len(embedding) == len(a)
            assert all(b[p] == x for p, x in zip(embedding, a))
            assert all(p < q for p, q in zip(embedding, embedding[1:]))

    @given(sequences, sequences)
    def test_omission_count_consistency(self, a, b):
        count = omission_count(a, b)
        if count is not None:
            assert count == len(b) - len(a)
            assert count >= 0


class TestSuffixProperties:
    @given(nonempty)
    def test_all_suffixes_are_suffixes(self, xs):
        for suffix in suffixes(xs):
            assert is_suffix(suffix, xs)

    @given(nonempty)
    def test_suffix_count(self, xs):
        assert len(list(suffixes(xs))) == len(xs)

    @given(sequences, sequences)
    def test_suffix_implies_subsequence(self, a, b):
        if is_suffix(a, b):
            assert is_subsequence(a, b)


class TestStutterProperties:
    @given(sequences)
    def test_idempotent(self, xs):
        once = remove_stutter(xs)
        assert remove_stutter(once) == once

    @given(sequences)
    def test_no_adjacent_duplicates(self, xs):
        collapsed = remove_stutter(xs)
        assert all(a != b for a, b in zip(collapsed, collapsed[1:]))

    @given(sequences)
    def test_is_subsequence_of_original(self, xs):
        assert is_subsequence(remove_stutter(xs), xs)

    @given(nonempty)
    def test_preserves_endpoints(self, xs):
        collapsed = remove_stutter(xs)
        assert collapsed[0] == xs[0]
        assert collapsed[-1] == xs[-1]


class TestConvergenceIsomorphismProperties:
    @given(nonempty)
    def test_reflexive(self, xs):
        assert is_convergence_isomorphism(xs, xs)

    @given(nonempty, st.data())
    def test_interior_deletion_preserves_isomorphism(self, xs, data):
        """Dropping a non-endpoint state keeps the relation — exactly
        the paper's 'may drop states except initial and final'."""
        if len(xs) < 3:
            return
        index = data.draw(st.integers(min_value=1, max_value=len(xs) - 2))
        shorter = xs[:index] + xs[index + 1:]
        assert is_convergence_isomorphism(shorter, xs)

    @given(nonempty, nonempty, nonempty)
    def test_transitive(self, a, b, c):
        if is_convergence_isomorphism(a, b) and is_convergence_isomorphism(b, c):
            assert is_convergence_isomorphism(a, c)

    @given(nonempty, nonempty)
    def test_isomorphism_implies_endpoint_agreement(self, a, b):
        if is_convergence_isomorphism(a, b):
            assert a[0] == b[0] and a[-1] == b[-1]

    @given(nonempty, nonempty)
    def test_stutter_insensitive_is_weaker(self, a, b):
        if is_convergence_isomorphism(a, b):
            assert is_convergence_isomorphism(a, b, stutter_insensitive=True)

    @given(nonempty, st.integers(min_value=1, max_value=3), st.data())
    def test_stutter_padding_is_invisible_in_stutter_mode(self, xs, copies, data):
        index = data.draw(st.integers(min_value=0, max_value=len(xs) - 1))
        padded = xs[:index] + [xs[index]] * copies + xs[index:]
        assert is_convergence_isomorphism(padded, xs, stutter_insensitive=True)
