"""Property-based tests: wrapper synthesis on random systems.

Whenever a random system has a non-empty behavioural core with respect
to a random spec, the synthesizer must produce a composite that
verifies at the fairness level it reports — and the wrapper must be
quiet on the core.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import behavioural_core, check_stabilization
from repro.core.errors import VerificationError
from repro.core.state import StateSchema
from repro.core.system import System
from repro.synthesis import synthesize_wrapper

SCHEMA = StateSchema({"v": tuple(range(5))})
ALL_PAIRS = [((a,), (b,)) for a in range(5) for b in range(5)]


@st.composite
def spec_and_system(draw):
    spec_transitions = draw(
        st.lists(st.sampled_from(ALL_PAIRS), min_size=1, max_size=10)
    )
    initial = [(draw(st.integers(min_value=0, max_value=4)),)]
    spec = System(SCHEMA, spec_transitions, initial=initial, name="spec")
    # the candidate system: a perturbation of the spec.
    kept = [
        pair for pair in spec.transitions() if draw(st.booleans())
    ]
    extra = draw(st.lists(st.sampled_from(ALL_PAIRS), max_size=4))
    system = System(SCHEMA, kept + extra, initial=initial, name="sys")
    return system, spec


class TestSynthesisOnRandomSystems:
    @settings(max_examples=120, deadline=None)
    @given(spec_and_system())
    def test_synthesis_verifies_or_reports_empty_core(self, pair):
        system, spec = pair
        try:
            result = synthesize_wrapper(system, spec)
        except VerificationError:
            assert behavioural_core(system, spec) == frozenset()
            return
        assert result.holds, result.verification.format()
        # the reported fairness is honoured by an independent recheck.
        recheck = check_stabilization(
            result.composite, spec, fairness=result.fairness,
            compute_steps=False,
        )
        assert recheck.holds

    @settings(max_examples=80, deadline=None)
    @given(spec_and_system())
    def test_wrapper_is_quiet_on_the_core(self, pair):
        system, spec = pair
        try:
            result = synthesize_wrapper(system, spec)
        except VerificationError:
            return
        core = behavioural_core(system, spec)
        for source, _target in result.wrapper.transitions():
            assert source not in core

    @settings(max_examples=60, deadline=None)
    @given(spec_and_system())
    def test_repair_targets_lie_in_the_core(self, pair):
        system, spec = pair
        try:
            result = synthesize_wrapper(system, spec)
        except VerificationError:
            return
        core = behavioural_core(system, spec)
        for _source, target in result.wrapper.transitions():
            assert target in core
