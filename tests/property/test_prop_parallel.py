"""Property-based differential testing of the sharded exploration.

Random small guarded-command programs (reusing the generator design of
``test_prop_programs``) drive the parallel primitives against their
sequential counterparts: the sharded BFS must discover exactly the
reachable set, the partitioned filter must keep exactly the
predicate's survivors in order, and the full stabilization verdict
must render identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_self_stabilization
from repro.gcl.action import GuardedAction
from repro.gcl.domain import ModularDomain
from repro.gcl.expr import AddMod, Const, Eq, Ne, Var
from repro.gcl.program import Program
from repro.gcl.variable import Variable
from repro.parallel import parallel_available
from repro.parallel.sharding import parallel_filter_states, parallel_reachable

import pytest

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="no fork start method"
)

MODULUS = 3
VAR_NAMES = ("u", "w.0")


@st.composite
def small_programs(draw):
    """Random well-typed two-variable programs over ``mod 3``."""
    n_actions = draw(st.integers(min_value=1, max_value=3))
    actions = []
    for index in range(n_actions):
        guard_var = draw(st.sampled_from(VAR_NAMES))
        guard_value = draw(st.integers(min_value=0, max_value=MODULUS - 1))
        guard_kind = draw(st.sampled_from([Eq, Ne]))
        target = draw(st.sampled_from(VAR_NAMES))
        effect = draw(
            st.one_of(
                st.integers(min_value=0, max_value=MODULUS - 1).map(Const),
                st.sampled_from(
                    [AddMod(Var(name), Const(1), MODULUS) for name in VAR_NAMES]
                ),
            )
        )
        actions.append(
            GuardedAction(
                f"act.{index}",
                guard_kind(Var(guard_var), Const(guard_value)),
                {target: effect},
            )
        )
    variables = [Variable(name, ModularDomain(MODULUS)) for name in VAR_NAMES]
    init = Eq(Var("u"), Const(0))
    return Program("fuzzed", variables, actions, init=init)


class TestShardedPrimitives:
    @settings(max_examples=25, deadline=None)
    @given(small_programs())
    def test_sharded_bfs_finds_the_reachable_set(self, program):
        system = program.compile()
        sequential = system.reachable()
        sharded = parallel_reachable(system, system.initial, workers=2)
        assert sharded == sequential

    @settings(max_examples=25, deadline=None)
    @given(small_programs())
    def test_sharded_bfs_from_full_space(self, program):
        """From every state as a source, BFS must return the whole
        space — the degenerate case exercising maximal fan-out."""
        system = program.compile()
        states = list(system.schema.states())
        sharded = parallel_reachable(system, states, workers=2)
        assert sharded == frozenset(states) | system.reachable_from(states)

    @settings(max_examples=25, deadline=None)
    @given(small_programs(), st.integers(min_value=0, max_value=MODULUS - 1))
    def test_parallel_filter_matches_comprehension(self, program, pivot):
        system = program.compile()
        states = list(system.schema.states())
        predicate = lambda state: state[0] == pivot  # noqa: E731
        survivors = parallel_filter_states(states, predicate, workers=2)
        assert survivors == [s for s in states if predicate(s)]

    @settings(max_examples=15, deadline=None)
    @given(small_programs())
    def test_self_stabilization_verdict_identical(self, program):
        """End to end: the full decision procedure renders the same
        verdict sequentially and sharded."""
        system = program.compile()
        sequential = check_self_stabilization(system, compute_steps=False)
        parallel = check_self_stabilization(
            system, compute_steps=False, workers=2
        )
        assert sequential.format() == parallel.format()
