"""Property-based differential testing of the vector engine.

The same random small guarded-command programs that drive
``test_prop_kernel`` drive the vector engine against both references:
the lowered successor tables must agree with the packed kernel code
for code, the frontier-array fixpoints must compute the bitset sets
exactly, and the full verdicts — stabilization and convergence
refinement, witness rendering included — must be byte-identical across
all three engines.  The fallback property (a vector request on a
pure-Python install renders the packed verdict) has no NumPy
dependency and runs everywhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_convergence_refinement, check_self_stabilization
from repro.kernel import PackedKernel, codes_of_flags, packed_reachable
from repro.kernel.vector import numpy_available
from repro.obs import Recorder
from tests.property.test_prop_kernel import small_programs

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed"
)


@needs_numpy
class TestVectorPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_lowered_successors_match_packed(self, program):
        from repro.kernel.vector import VectorKernel

        vector = VectorKernel.from_program(program)
        packed = PackedKernel.from_program(program)
        assert vector.initial_codes == packed.initial_codes
        for code in range(packed.size):
            assert vector.successors(code) == packed.successors(code), code

    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_vector_reachable_equals_packed_reachable(self, program):
        import numpy as np

        from repro.kernel.vector import as_vector_kernel, vector_reachable

        packed = PackedKernel.from_program(program)
        vector = as_vector_kernel(program)
        flags = packed_reachable(
            packed.successors, packed.initial_codes, packed.size
        )
        vector_flags = vector_reachable(vector, vector.initial_array)
        assert list(codes_of_flags(flags)) == [
            int(code) for code in np.nonzero(vector_flags)[0]
        ]

    @settings(max_examples=40, deadline=None)
    @given(small_programs())
    def test_vector_terminals_and_cycles_match_packed(self, program):
        import numpy as np

        from repro.kernel import packed_has_cycle, packed_terminals
        from repro.kernel.vector import (
            as_vector_kernel,
            vector_has_cycle,
            vector_terminals,
        )

        packed = PackedKernel.from_program(program)
        vector = as_vector_kernel(program)
        everywhere = bytearray(b"\x01") * packed.size
        region = np.ones(vector.size, dtype=bool)
        assert packed_terminals(packed.successors, everywhere) == [
            int(code) for code in vector_terminals(vector, region)
        ]
        assert vector_has_cycle(vector, region) == packed_has_cycle(
            packed.successors, everywhere
        )


class TestVectorVerdicts:
    @settings(max_examples=25, deadline=None)
    @given(small_programs())
    def test_self_stabilization_verdict_identical(self, program):
        """End to end across all three engines, witness states included.

        Runs on a pure-Python install too: there the vector request
        exercises the packed fallback, which must render the same
        verdict anyway.
        """
        verdicts = {
            engine: check_self_stabilization(
                program, compute_steps=False, engine=engine
            )
            for engine in ("tuple", "packed", "vector")
        }
        assert (
            verdicts["vector"].format()
            == verdicts["packed"].format()
            == verdicts["tuple"].format()
        )
        assert verdicts["vector"].core == verdicts["tuple"].core
        assert (
            verdicts["vector"].legitimate_abstract
            == verdicts["tuple"].legitimate_abstract
        )

    @settings(max_examples=15, deadline=None)
    @given(small_programs(), small_programs())
    def test_convergence_refinement_verdict_identical(self, concrete, spec):
        tuple_verdict = check_convergence_refinement(
            concrete, spec, engine="tuple"
        )
        vector_verdict = check_convergence_refinement(
            concrete, spec, engine="vector"
        )
        assert tuple_verdict.format() == vector_verdict.format()

    @settings(max_examples=15, deadline=None)
    @given(small_programs(), small_programs())
    def test_stutter_insensitive_refinement_identical(self, concrete, spec):
        tuple_verdict = check_convergence_refinement(
            concrete, spec, stutter_insensitive=True, engine="tuple"
        )
        vector_verdict = check_convergence_refinement(
            concrete, spec, stutter_insensitive=True, engine="vector"
        )
        assert tuple_verdict.format() == vector_verdict.format()

    @settings(max_examples=15, deadline=None)
    @given(small_programs())
    def test_fallback_verdict_identical_without_numpy(self, program):
        """NumPy-free by construction: with availability forced off,
        a vector request must fall back and match the packed verdict."""
        from repro.kernel.vector import availability

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(availability, "HAVE_NUMPY", False)
            recorder = Recorder()
            fallback_verdict = check_self_stabilization(
                program, compute_steps=False, engine="vector",
                instrumentation=recorder,
            )
        packed_verdict = check_self_stabilization(
            program, compute_steps=False, engine="packed"
        )
        assert fallback_verdict.format() == packed_verdict.format()
        assert recorder.record().counters["engine.fallback.packed"] == 1
